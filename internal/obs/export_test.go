package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestChromeExportGolden(t *testing.T) {
	tr := NewTracerWithClock("run-1", "unit", fixedClock())
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, child := Start(ctx, "compute")
	child.SetAttr("cache", "miss")
	child.Lap("queue_wait_us")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.Finish().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
 "traceEvents": [
  {
   "name": "root",
   "cat": "span",
   "ph": "X",
   "ts": 0,
   "dur": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "parent": "0",
    "span": "1"
   }
  },
  {
   "name": "compute",
   "cat": "span",
   "ph": "X",
   "ts": 0,
   "dur": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "cache": "miss",
    "parent": "1",
    "queue_wait_us": "0",
    "span": "2"
   }
  }
 ],
 "displayTimeUnit": "ms",
 "otherData": {
  "trace_id": "run-1",
  "trace_name": "unit"
 }
}
`
	if got := buf.String(); got != want {
		t.Errorf("chrome export mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := NewTracerWithClock("rt", "roundtrip", stepClock())
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "outer")
	_, inner := Start(ctx, "inner")
	inner.SetAttr("k", "v")
	inner.End()
	root.End()
	trace := tr.Finish()

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ParseChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != len(trace.Spans) {
		t.Fatalf("decoded %d events, want %d", len(f.TraceEvents), len(trace.Spans))
	}
	for i, ev := range f.TraceEvents {
		s := trace.Spans[i]
		if ev.Name != s.Name || ev.TS != s.StartUS || ev.Dur != s.DurUS || ev.Ph != "X" {
			t.Errorf("event %d = %+v, want span %+v", i, ev, s)
		}
	}
	if f.OtherData["trace_id"] != "rt" {
		t.Errorf("trace_id = %q, want rt", f.OtherData["trace_id"])
	}
	if _, err := ParseChrome(strings.NewReader("{broken")); err == nil {
		t.Error("ParseChrome accepted malformed JSON")
	}
}

func TestWriteTree(t *testing.T) {
	trace := &Trace{
		ID: "job-000001", Name: "sweep",
		Spans: []SpanData{
			{ID: 1, Name: "synth", StartUS: 0, DurUS: 2000},
			{ID: 2, Parent: 1, Name: "place", StartUS: 100, DurUS: 1000, Attrs: []Attr{{Key: "cache", Value: "hit"}}},
			{ID: 3, Name: "mc/A", StartUS: 2500, DurUS: 500},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `trace job-000001 (sweep) — 3.000ms, 3 spans
├─ synth 2.000ms
│  └─ place 1.000ms cache=hit
└─ mc/A 0.500ms
`
	if got := buf.String(); got != want {
		t.Errorf("tree mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteTreeOrphanPrintsAsRoot(t *testing.T) {
	trace := &Trace{ID: "x", Name: "x", Spans: []SpanData{
		{ID: 5, Parent: 99, Name: "orphan", StartUS: 0, DurUS: 10},
	}}
	var buf bytes.Buffer
	if err := trace.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "orphan") {
		t.Errorf("orphan span missing from tree:\n%s", buf.String())
	}
}
