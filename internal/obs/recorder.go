package obs

import (
	"sync"
	"time"
)

// Recorder is the flight recorder: a bounded ring of recent traces.
// The daemon adds one trace per finished job; /debug/runs serves the
// index and /debug/trace/{id} the full trace. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	entries []recorded // oldest first, len <= cap
}

type recorded struct {
	trace    *Trace
	captured time.Time
}

// Summary is one index entry of the recorder, newest first in List.
// Attrs carries the trace's root-span attributes (job state, error
// class), so /debug/runs is scannable without fetching each trace.
type Summary struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	Spans    int       `json:"spans"`
	DurMS    float64   `json:"dur_ms"`
	Captured time.Time `json:"captured"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// NewRecorder returns a recorder keeping the last n traces (n <= 0
// defaults to 64).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 64
	}
	return &Recorder{cap: n}
}

// Add records a trace, evicting the oldest when full. Nil traces are
// ignored.
func (r *Recorder) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == r.cap {
		copy(r.entries, r.entries[1:])
		r.entries = r.entries[:r.cap-1]
	}
	r.entries = append(r.entries, recorded{trace: t, captured: Now()})
}

// Get returns the most recent trace with the given ID.
func (r *Recorder) Get(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.entries) - 1; i >= 0; i-- {
		if r.entries[i].trace.ID == id {
			return r.entries[i].trace, true
		}
	}
	return nil, false
}

// Traces returns the retained traces, newest first — the input to
// AggregateCosts for the cross-run cost table.
func (r *Recorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.entries))
	for i := len(r.entries) - 1; i >= 0; i-- {
		out = append(out, r.entries[i].trace)
	}
	return out
}

// List returns the index of retained traces, newest first.
func (r *Recorder) List() []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, 0, len(r.entries))
	for i := len(r.entries) - 1; i >= 0; i-- {
		e := r.entries[i]
		s := Summary{
			ID:       e.trace.ID,
			Name:     e.trace.Name,
			Spans:    len(e.trace.Spans),
			DurMS:    float64(e.trace.DurUS()) / 1000,
			Captured: e.captured,
		}
		for _, sp := range e.trace.Spans {
			if sp.Parent == 0 {
				s.Attrs = sp.Attrs
				break
			}
		}
		out = append(out, s)
	}
	return out
}
