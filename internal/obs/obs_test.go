package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fixedClock returns the same instant forever: every span starts at
// 0µs and lasts 0µs, which is what golden tests want.
func fixedClock() func() time.Time {
	epoch := time.Unix(0, 0)
	return func() time.Time { return epoch }
}

// stepClock advances 1ms per read, making span ordering and durations
// deterministic without a wall clock.
func stepClock() func() time.Time {
	epoch := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return epoch.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, span := Start(ctx, "anything")
	if span != nil {
		t.Fatalf("Start without tracer returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without tracer changed the context")
	}
	// Every method must be nil-safe.
	span.SetAttr("k", "v")
	span.Lap("lap_us")
	span.End()
	if Enabled(ctx) {
		t.Fatal("Enabled reported a tracer on a bare context")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracerWithClock("t1", "test", stepClock())
	ctx := WithTracer(context.Background(), tr)
	if !Enabled(ctx) {
		t.Fatal("Enabled = false with a tracer installed")
	}
	ctx, root := Start(ctx, "root")
	ctx2, child := Start(ctx, "child")
	_, grand := Start(ctx2, "grand")
	grand.End()
	child.End()
	root.SetAttr("answer", 42)
	root.End()

	trace := tr.Finish()
	if len(trace.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(trace.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range trace.Spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Errorf("grand parent = %d, want child %d", byName["grand"].Parent, byName["child"].ID)
	}
	if got := byName["root"].Attrs; len(got) != 1 || got[0] != (Attr{Key: "answer", Value: "42"}) {
		t.Errorf("root attrs = %v", got)
	}
	if byName["grand"].DurUS <= 0 {
		t.Errorf("grand duration = %dµs, want > 0", byName["grand"].DurUS)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracerWithClock("t", "test", stepClock())
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "once")
	s.End()
	s.End()
	if n := len(tr.Finish().Spans); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
}

func TestLapRecordsElapsedSegments(t *testing.T) {
	tr := NewTracerWithClock("t", "test", stepClock())
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "segmented")
	s.Lap("first_us")
	s.Lap("second_us")
	s.End()
	spans := tr.Finish().Spans
	if len(spans[0].Attrs) != 2 {
		t.Fatalf("attrs = %v, want 2 laps", spans[0].Attrs)
	}
	for _, a := range spans[0].Attrs {
		if a.Value != "1000" { // stepClock advances 1ms per read
			t.Errorf("lap %s = %sµs, want 1000", a.Key, a.Value)
		}
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer("t", "race")
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, s := Start(ctx, fmt.Sprintf("w%d", i))
				s.SetAttr("j", j)
				s.Lap("lap_us")
				s.End()
			}
		}(i)
	}
	wg.Wait()
	if n := len(tr.Finish().Spans); n != 16*50 {
		t.Fatalf("got %d spans, want %d", n, 16*50)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 3; i++ {
		r.Add(&Trace{ID: fmt.Sprintf("job-%d", i), Name: "t"})
	}
	if _, ok := r.Get("job-0"); ok {
		t.Error("oldest trace survived past the ring bound")
	}
	if _, ok := r.Get("job-2"); !ok {
		t.Error("newest trace missing")
	}
	list := r.List()
	if len(list) != 2 || list[0].ID != "job-2" || list[1].ID != "job-1" {
		t.Errorf("List = %+v, want job-2 then job-1", list)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Add(&Trace{ID: "x"})
	if _, ok := r.Get("x"); ok {
		t.Error("nil recorder returned a trace")
	}
	if r.List() != nil {
		t.Error("nil recorder returned a list")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				r.Add(&Trace{ID: fmt.Sprintf("j%d-%d", i, j)})
				r.List()
			}
		}(i)
	}
	wg.Wait()
	if got := len(r.List()); got != 8 {
		t.Fatalf("retained %d traces, want 8", got)
	}
}
