package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func collect(ch <-chan int, into *[]int, done chan<- struct{}) {
	for v := range ch {
		*into = append(*into, v)
	}
	close(done)
}

func TestHubBroadcastOrder(t *testing.T) {
	h := NewHub[int](16, nil)
	var a, b []int
	chA, cancelA := h.Subscribe()
	chB, cancelB := h.Subscribe()
	defer cancelA()
	defer cancelB()
	doneA, doneB := make(chan struct{}), make(chan struct{})
	go collect(chA, &a, doneA)
	go collect(chB, &b, doneB)
	for i := 0; i < 10; i++ {
		if !h.Publish(i) {
			t.Fatalf("Publish(%d) = false on an open hub", i)
		}
	}
	h.Close()
	<-doneA
	<-doneB
	for name, got := range map[string][]int{"a": a, "b": b} {
		if len(got) != 10 {
			t.Fatalf("subscriber %s received %d values, want 10: %v", name, len(got), got)
		}
		for i, v := range got {
			if v != i {
				t.Errorf("subscriber %s out of order at %d: got %d", name, i, v)
			}
		}
	}
	if h.Published() != 10 {
		t.Errorf("Published = %d, want 10", h.Published())
	}
	if h.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", h.Dropped())
	}
}

// TestHubSlowSubscriberDrops pins the backpressure contract: a
// subscriber that never reads loses events beyond its buffer — with
// the drop callback fired per loss — while a reading subscriber
// receives every event and Publish never blocks on either.
func TestHubSlowSubscriberDrops(t *testing.T) {
	var cbDrops atomic.Int64
	h := NewHub[int](2, func() { cbDrops.Add(1) })
	defer h.Close()
	stuck, cancelStuck := h.Subscribe() // hub default: buffer 2
	defer cancelStuck()
	live, cancelLive := h.SubscribeBuf(64)
	defer cancelLive()

	const n = 20
	for i := 0; i < n; i++ {
		h.Publish(i)
	}
	// Receive on the live subscriber inline: delivery happens on the
	// dispatch goroutine after Publish returns, so draining here both
	// proves completeness and paces the drop accounting.
	var got []int
	timeout := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case v := <-live:
			got = append(got, v)
		case <-timeout:
			t.Fatalf("live subscriber stalled at %d/%d events", len(got), n)
		}
	}
	want := int64(n - 2) // stuck buffer holds 2, the rest dropped
	for deadline := time.Now().Add(2 * time.Second); h.Dropped() != want && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	if h.Dropped() != want {
		t.Errorf("Dropped = %d, want %d", h.Dropped(), want)
	}
	if cbDrops.Load() != want {
		t.Errorf("onDrop fired %d times, want %d", cbDrops.Load(), want)
	}
	if len(stuck) != 2 {
		t.Errorf("stuck subscriber buffered %d, want 2", len(stuck))
	}
}

func TestHubCancelAndClose(t *testing.T) {
	h := NewHub[string](4, nil)
	ch, cancel := h.Subscribe()
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("cancelled subscriber channel still open")
	}
	ch2, cancel2 := h.Subscribe()
	h.Close()
	h.Close() // idempotent
	if _, ok := <-ch2; ok {
		t.Fatal("Close left a subscriber channel open")
	}
	cancel2() // safe after Close
	if h.Publish("late") {
		t.Fatal("Publish succeeded on a closed hub")
	}
	ch3, cancel3 := h.Subscribe()
	cancel3()
	if _, ok := <-ch3; ok {
		t.Fatal("Subscribe on a closed hub returned an open channel")
	}
}

func TestHubNilSafe(t *testing.T) {
	var h *Hub[int]
	if h.Publish(1) {
		t.Error("nil hub accepted a publish")
	}
	h.Close()
	if h.Published() != 0 || h.Dropped() != 0 {
		t.Error("nil hub reported nonzero counters")
	}
}

// TestHubConcurrent exercises racing publishers, subscribers and
// cancels; run under -race it proves the dispatch goroutine's
// ownership of the subscriber set.
func TestHubConcurrent(t *testing.T) {
	h := NewHub[int](8, nil)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h.Publish(p*100 + i)
			}
		}(p)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel := h.Subscribe()
			defer cancel()
			deadline := time.After(2 * time.Second)
			for n := 0; n < 10; n++ {
				select {
				case _, ok := <-ch:
					if !ok {
						return
					}
				case <-deadline:
					return
				}
			}
		}()
	}
	wg.Wait()
	h.Close()
	if h.Published() != 200 {
		t.Errorf("Published = %d, want 200", h.Published())
	}
}
