package verilog

import (
	"bytes"
	"strings"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/vex"
)

func TestWriteSmallNetlist(t *testing.T) {
	b := netlist.NewBuilder("toy", cell.Default65nm())
	a := b.Input("a")
	c := b.Input("c")
	x := b.Nand(a, c)
	q := b.DFF(x)
	b.Output(q)
	var buf bytes.Buffer
	if err := Write(&buf, b.NL); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"module toy (clk, a, c,",
		"input clk;",
		"input a;",
		"NAND2",
		".CK(clk)",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every instance appears exactly once.
	if strings.Count(out, "NAND2 ") != 1 || strings.Count(out, "DFF ") != 1 {
		t.Errorf("instance counts wrong:\n%s", out)
	}
}

func TestEscapedIdentifiers(t *testing.T) {
	b := netlist.NewBuilder("esc", cell.Default65nm())
	w := b.InputWord("data", 2)
	x := b.And(w[0], w[1])
	b.Output(x)
	var buf bytes.Buffer
	if err := Write(&buf, b.NL); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Bus bits need escaped identifiers.
	if !strings.Contains(out, `\data[0] `) {
		t.Errorf("escaped identifier missing:\n%s", out)
	}
}

func TestTieCellsAndPlainNames(t *testing.T) {
	b := netlist.NewBuilder("ties", cell.Default65nm())
	k := b.Const(true)
	x := b.Not(k)
	b.Output(x)
	var buf bytes.Buffer
	if err := Write(&buf, b.NL); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TIEHI") {
		t.Error("tie cell missing")
	}
}

func TestFullCoreEmits(t *testing.T) {
	core, err := vex.Build(vex.SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, core.NL); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One instantiation line per instance plus ports/wires.
	lines := strings.Count(out, ";\n")
	if lines < core.NL.NumCells() {
		t.Errorf("only %d statements for %d cells", lines, core.NL.NumCells())
	}
	st := Stats(core.NL)
	if st["DFF"] == 0 || st["MUX2"] == 0 {
		t.Errorf("stats missing kinds: %v", st)
	}
}

func TestSanitize(t *testing.T) {
	if sanitizeID("") != "anon" || sanitizeID("9a b/c") != "_a_b_c" {
		t.Errorf("sanitize wrong: %q %q", sanitizeID(""), sanitizeID("9a b/c"))
	}
	if escapeID("plain_Name2") != "plain_Name2" {
		t.Error("plain name escaped needlessly")
	}
	if escapeID("a/b") != `\a/b ` {
		t.Errorf("escape wrong: %q", escapeID("a/b"))
	}
}
