package netlist

import (
	"fmt"

	"vipipe/internal/cell"
)

// Word is a little-endian bus of net IDs (index 0 = bit 0).
type Word []int

// Builder provides scoped, name-generating construction helpers on top
// of a Netlist. RTL generators push a scope (stage + unit) and emit
// gates; names are derived automatically.
type Builder struct {
	NL    *Netlist
	stage Stage
	unit  string
	seq   int
}

// NewBuilder wraps an empty netlist for construction.
func NewBuilder(name string, lib *cell.Library) *Builder {
	return &Builder{NL: New(name, lib)}
}

// Scope sets the stage and unit tags applied to subsequently created
// instances and returns a function restoring the previous scope.
func (b *Builder) Scope(stage Stage, unit string) func() {
	ps, pu := b.stage, b.unit
	b.stage, b.unit = stage, unit
	return func() { b.stage, b.unit = ps, pu }
}

// Stage returns the current scope's stage tag.
func (b *Builder) Stage() Stage { return b.stage }

// Unit returns the current scope's unit tag.
func (b *Builder) Unit() string { return b.unit }

func (b *Builder) autoName(kind cell.Kind) string {
	b.seq++
	return fmt.Sprintf("%s/%s_%d", b.unit, kind, b.seq)
}

// Gate instantiates a cell of the given kind in the current scope and
// returns its output net.
func (b *Builder) Gate(kind cell.Kind, inputs ...int) int {
	return b.NL.AddInst(kind, b.autoName(kind), b.stage, b.unit, inputs...)
}

// Input creates a named primary-input net.
func (b *Builder) Input(name string) int { return b.NL.AddPI(name) }

// InputWord creates a primary-input bus of the given width.
func (b *Builder) InputWord(name string, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.NL.AddPI(fmt.Sprintf("%s[%d]", name, i))
	}
	return w
}

// Output marks a net as primary output.
func (b *Builder) Output(net int) { b.NL.MarkPO(net) }

// OutputWord marks each bit of a bus as primary output.
func (b *Builder) OutputWord(w Word) {
	for _, n := range w {
		b.Output(n)
	}
}

// Convenience single-gate constructors.

// Not returns !a.
func (b *Builder) Not(a int) int { return b.Gate(cell.Inv, a) }

// Buf returns a buffered copy of a.
func (b *Builder) Buf(a int) int { return b.Gate(cell.Buf, a) }

// And returns a & c.
func (b *Builder) And(a, c int) int { return b.Gate(cell.And2, a, c) }

// Or returns a | c.
func (b *Builder) Or(a, c int) int { return b.Gate(cell.Or2, a, c) }

// Nand returns !(a & c).
func (b *Builder) Nand(a, c int) int { return b.Gate(cell.Nand2, a, c) }

// Nor returns !(a | c).
func (b *Builder) Nor(a, c int) int { return b.Gate(cell.Nor2, a, c) }

// Xor returns a ^ c.
func (b *Builder) Xor(a, c int) int { return b.Gate(cell.Xor2, a, c) }

// Xnor returns !(a ^ c).
func (b *Builder) Xnor(a, c int) int { return b.Gate(cell.Xnor2, a, c) }

// Mux returns sel ? hi : lo.
func (b *Builder) Mux(lo, hi, sel int) int { return b.Gate(cell.Mux2, lo, hi, sel) }

// DFF instantiates a flip-flop capturing d and returns its Q net.
func (b *Builder) DFF(d int) int { return b.Gate(cell.DFF, d) }

// Const returns a constant-0 or constant-1 net backed by a tie cell.
func (b *Builder) Const(v bool) int {
	if v {
		return b.Gate(cell.TieHi)
	}
	return b.Gate(cell.TieLo)
}

// ConstWord returns a bus holding the low width bits of v.
func (b *Builder) ConstWord(v uint64, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.Const(v>>uint(i)&1 == 1)
	}
	return w
}

// AndTree reduces the inputs with a balanced tree of AND gates,
// using 3-input cells where they fit.
func (b *Builder) AndTree(in []int) int { return b.tree(in, cell.And2, cell.And3) }

// OrTree reduces the inputs with a balanced tree of OR gates.
func (b *Builder) OrTree(in []int) int { return b.tree(in, cell.Or2, cell.Or3) }

func (b *Builder) tree(in []int, k2, k3 cell.Kind) int {
	if len(in) == 0 {
		panic("netlist: empty reduction tree")
	}
	level := append([]int(nil), in...)
	for len(level) > 1 {
		var next []int
		i := 0
		for i < len(level) {
			switch {
			case len(level)-i >= 3 && (len(level)-i)%2 == 1:
				next = append(next, b.Gate(k3, level[i], level[i+1], level[i+2]))
				i += 3
			case len(level)-i >= 2:
				next = append(next, b.Gate(k2, level[i], level[i+1]))
				i += 2
			default:
				next = append(next, level[i])
				i++
			}
		}
		level = next
	}
	return level[0]
}

// MuxWord returns a bitwise sel ? hi : lo over two equal-width buses.
func (b *Builder) MuxWord(lo, hi Word, sel int) Word {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("netlist: mux width mismatch %d vs %d", len(lo), len(hi)))
	}
	out := make(Word, len(lo))
	for i := range out {
		out[i] = b.Mux(lo[i], hi[i], sel)
	}
	return out
}

// DFFWord registers every bit of a bus and returns the Q bus.
func (b *Builder) DFFWord(d Word) Word {
	q := make(Word, len(d))
	for i := range q {
		q[i] = b.DFF(d[i])
	}
	return q
}

// NotWord inverts every bit of a bus.
func (b *Builder) NotWord(a Word) Word {
	out := make(Word, len(a))
	for i := range out {
		out[i] = b.Not(a[i])
	}
	return out
}

// AndWord computes the bitwise AND of two buses.
func (b *Builder) AndWord(x, y Word) Word { return b.zipWord(x, y, cell.And2) }

// OrWord computes the bitwise OR of two buses.
func (b *Builder) OrWord(x, y Word) Word { return b.zipWord(x, y, cell.Or2) }

// XorWord computes the bitwise XOR of two buses.
func (b *Builder) XorWord(x, y Word) Word { return b.zipWord(x, y, cell.Xor2) }

func (b *Builder) zipWord(x, y Word, k cell.Kind) Word {
	if len(x) != len(y) {
		panic(fmt.Sprintf("netlist: word width mismatch %d vs %d", len(x), len(y)))
	}
	out := make(Word, len(x))
	for i := range out {
		out[i] = b.Gate(k, x[i], y[i])
	}
	return out
}

// FanWord replicates a single net into a width-wide bus (no gates).
func FanWord(n, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = n
	}
	return w
}
