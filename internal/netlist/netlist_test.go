package netlist

import (
	"strings"
	"testing"
	"testing/quick"

	"vipipe/internal/cell"
)

func lib() *cell.Library { return cell.Default65nm() }

func TestStageString(t *testing.T) {
	if StageExecute.String() != "EXECUTE" || StageNone.String() != "NONE" {
		t.Error("stage names wrong")
	}
	if Stage(99).String() != "STAGE(99)" {
		t.Error("out-of-range stage name wrong")
	}
}

func TestAddInstWiring(t *testing.T) {
	n := New("t", lib())
	a := n.AddPI("a")
	bNet := n.AddPI("b")
	out := n.AddInst(cell.Nand2, "u1", StageDecode, "dec", a, bNet)
	if n.NumCells() != 1 || n.NumNets() != 3 {
		t.Fatalf("cells=%d nets=%d", n.NumCells(), n.NumNets())
	}
	if n.Nets[out].Driver != 0 {
		t.Error("driver not set")
	}
	if len(n.Nets[a].Sinks) != 1 || n.Nets[a].Sinks[0] != (Sink{Inst: 0, Pin: 0}) {
		t.Error("sink bookkeeping wrong for a")
	}
	if len(n.Nets[bNet].Sinks) != 1 || n.Nets[bNet].Sinks[0] != (Sink{Inst: 0, Pin: 1}) {
		t.Error("sink bookkeeping wrong for b")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddInstArityPanic(t *testing.T) {
	n := New("t", lib())
	a := n.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.AddInst(cell.Nand2, "u1", StageNone, "", a)
}

func TestValidateCatchesDanglingSink(t *testing.T) {
	n := New("t", lib())
	a := n.AddPI("a")
	n.AddInst(cell.Inv, "u1", StageNone, "", a)
	// Corrupt: an undriven, non-PI net with sinks.
	bad := n.AddNet("bad")
	n.Insts[0].Inputs[0] = bad
	n.Nets[bad].Sinks = append(n.Nets[bad].Sinks, Sink{Inst: 0, Pin: 0})
	if err := n.Validate(); err == nil {
		t.Error("dangling net not caught")
	}
}

func TestLevelizeOrdersChain(t *testing.T) {
	n := New("t", lib())
	a := n.AddPI("a")
	x := n.AddInst(cell.Inv, "i1", StageNone, "", a)
	y := n.AddInst(cell.Inv, "i2", StageNone, "", x)
	n.AddInst(cell.Inv, "i3", StageNone, "", y)
	order, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestLevelizeDetectsCycle(t *testing.T) {
	n := New("t", lib())
	// Build a 2-inverter loop by hand.
	n1 := n.AddNet("n1")
	n2 := n.AddNet("n2")
	n.Insts = append(n.Insts,
		Inst{ID: 0, Name: "i1", Kind: cell.Inv, Inputs: []int{n2}, Out: n1},
		Inst{ID: 1, Name: "i2", Kind: cell.Inv, Inputs: []int{n1}, Out: n2},
	)
	n.Nets[n1].Driver = 0
	n.Nets[n2].Driver = 1
	n.Nets[n1].Sinks = []Sink{{Inst: 1, Pin: 0}}
	n.Nets[n2].Sinks = []Sink{{Inst: 0, Pin: 0}}
	if _, err := n.Levelize(); err == nil {
		t.Error("cycle not detected")
	}
	if err := n.Validate(); err == nil {
		t.Error("validate should also fail on cycle")
	}
}

func TestLevelizeCutsAtFlops(t *testing.T) {
	// inv -> DFF -> inv is not a combinational cycle even when fed
	// back.
	b := NewBuilder("t", lib())
	a := b.Input("a")
	x := b.Not(a)
	q := b.DFF(x)
	y := b.Not(q)
	_ = y
	order, err := b.NL.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Errorf("comb order size %d, want 2", len(order))
	}
	if b.NL.LogicDepth() != 1 {
		t.Errorf("depth = %d, want 1", b.NL.LogicDepth())
	}
}

func TestSequentialsAndFeedbackLoop(t *testing.T) {
	// A DFF feeding itself through an inverter (toggle flop) must
	// validate cleanly: the flop cuts the loop.
	b := NewBuilder("t", lib())
	// Create the DFF with a placeholder input, then rewire it to
	// close the loop.
	ph := b.Input("ph")
	q := b.DFF(ph)
	nq := b.Not(q)
	dff := b.NL.Nets[q].Driver
	b.NL.Insts[dff].Inputs[0] = nq
	b.NL.Nets[ph].Sinks = nil
	b.NL.Nets[nq].Sinks = append(b.NL.Nets[nq].Sinks, Sink{Inst: dff, Pin: 0})
	if err := b.NL.Validate(); err != nil {
		t.Fatalf("toggle flop should validate: %v", err)
	}
	if got := len(b.NL.Sequentials()); got != 1 {
		t.Errorf("sequentials = %d, want 1", got)
	}
}

func TestBuilderScope(t *testing.T) {
	b := NewBuilder("t", lib())
	restore := b.Scope(StageExecute, "execute/alu")
	a := b.Input("a")
	b.Not(a)
	restore()
	b.Not(a)
	if b.NL.Insts[0].Stage != StageExecute || b.NL.Insts[0].Unit != "execute/alu" {
		t.Error("scope not applied")
	}
	if b.NL.Insts[1].Stage != StageNone || b.NL.Insts[1].Unit != "" {
		t.Error("scope not restored")
	}
}

func TestBuilderWords(t *testing.T) {
	b := NewBuilder("t", lib())
	x := b.InputWord("x", 4)
	y := b.InputWord("y", 4)
	sel := b.Input("sel")
	m := b.MuxWord(x, y, sel)
	if len(m) != 4 {
		t.Fatal("mux width")
	}
	q := b.DFFWord(m)
	b.OutputWord(q)
	if err := b.NL.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.NL.POs) != 4 || len(b.NL.PIs) != 9 {
		t.Errorf("PIs=%d POs=%d", len(b.NL.PIs), len(b.NL.POs))
	}
	got := b.NL.Stats()
	if got.Flops != 4 {
		t.Errorf("flops = %d", got.Flops)
	}
}

func TestBuilderConstWord(t *testing.T) {
	b := NewBuilder("t", lib())
	w := b.ConstWord(0b1010, 4)
	kinds := []cell.Kind{cell.TieLo, cell.TieHi, cell.TieLo, cell.TieHi}
	for i, n := range w {
		if b.NL.Insts[b.NL.Nets[n].Driver].Kind != kinds[i] {
			t.Errorf("bit %d wrong tie cell", i)
		}
	}
}

func TestTreeReduction(t *testing.T) {
	for _, width := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33} {
		b := NewBuilder("t", lib())
		in := make([]int, width)
		for i := range in {
			in[i] = b.Input("i")
		}
		out := b.AndTree(in)
		if out < 0 {
			t.Fatal("no output")
		}
		if err := b.NL.Validate(); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		depth := b.NL.LogicDepth()
		// A balanced tree of 2/3-input gates over w inputs is at
		// most ceil(log2(w)) deep.
		maxDepth := 1
		for w := width; w > 1; w = (w + 1) / 2 {
			maxDepth++
		}
		if width > 1 && depth > maxDepth {
			t.Errorf("width %d: depth %d > %d", width, depth, maxDepth)
		}
	}
}

func TestTreePanicsOnEmpty(t *testing.T) {
	b := NewBuilder("t", lib())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.OrTree(nil)
}

func TestWordOpsPanicOnMismatch(t *testing.T) {
	b := NewBuilder("t", lib())
	x := b.InputWord("x", 2)
	y := b.InputWord("y", 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.XorWord(x, y)
}

func TestStatsGroupsByTopUnit(t *testing.T) {
	b := NewBuilder("t", lib())
	a := b.Input("a")
	r1 := b.Scope(StageExecute, "execute/slot0/alu")
	b.Not(a)
	b.Not(a)
	r1()
	r2 := b.Scope(StageDecode, "decode")
	b.Not(a)
	r2()
	ds := b.NL.Stats()
	if len(ds.ByUnit) != 2 {
		t.Fatalf("units = %v", ds.ByUnit)
	}
	if ds.ByUnit[0].Unit != "execute" || ds.ByUnit[0].Cells != 2 {
		t.Errorf("top unit wrong: %+v", ds.ByUnit[0])
	}
	if !strings.Contains(ds.String(), "execute") {
		t.Error("render missing unit")
	}
}

func TestTopUnit(t *testing.T) {
	cases := map[string]string{
		"execute/slot0/alu": "execute",
		"decode":            "decode",
		"":                  "(untagged)",
	}
	for in, want := range cases {
		if got := TopUnit(in); got != want {
			t.Errorf("TopUnit(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: for any small random DAG built via the builder, Validate
// passes and Levelize orders all combinational cells.
func TestRandomDAGProperty(t *testing.T) {
	f := func(seedBytes []byte) bool {
		b := NewBuilder("t", lib())
		nets := []int{b.Input("a"), b.Input("b")}
		for i, sb := range seedBytes {
			if i > 40 {
				break
			}
			x := nets[int(sb)%len(nets)]
			y := nets[int(sb/7)%len(nets)]
			var out int
			switch sb % 5 {
			case 0:
				out = b.Not(x)
			case 1:
				out = b.And(x, y)
			case 2:
				out = b.Xor(x, y)
			case 3:
				out = b.DFF(x)
			default:
				out = b.Mux(x, y, nets[int(sb/3)%len(nets)])
			}
			nets = append(nets, out)
		}
		if err := b.NL.Validate(); err != nil {
			return false
		}
		order, err := b.NL.Levelize()
		if err != nil {
			return false
		}
		comb := 0
		for i := range b.NL.Insts {
			if !b.NL.IsSequential(i) {
				comb++
			}
		}
		return len(order) == comb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFanWord(t *testing.T) {
	w := FanWord(7, 3)
	if len(w) != 3 || w[0] != 7 || w[2] != 7 {
		t.Errorf("FanWord wrong: %v", w)
	}
}

func TestRewireInput(t *testing.T) {
	n := New("t", lib())
	a := n.AddPI("a")
	b2 := n.AddPI("b")
	out := n.AddInst(cell.Inv, "u1", StageNone, "", a)
	inst := n.Nets[out].Driver
	n.RewireInput(inst, 0, b2)
	if n.Insts[inst].Inputs[0] != b2 {
		t.Error("input not rewired")
	}
	if len(n.Nets[a].Sinks) != 0 {
		t.Error("old sink not removed")
	}
	if len(n.Nets[b2].Sinks) != 1 || n.Nets[b2].Sinks[0].Inst != inst {
		t.Error("new sink not added")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rewiring to the same net is a no-op.
	n.RewireInput(inst, 0, b2)
	if len(n.Nets[b2].Sinks) != 1 {
		t.Error("same-net rewire duplicated sink")
	}
}

func TestReplaceNetSinks(t *testing.T) {
	n := New("t", lib())
	old := n.AddPI("old")
	repl := n.AddPI("new")
	for i := 0; i < 3; i++ {
		n.AddInst(cell.Inv, "u", StageNone, "", old)
	}
	n.ReplaceNetSinks(old, repl)
	if len(n.Nets[old].Sinks) != 0 {
		t.Error("old net still has sinks")
	}
	if len(n.Nets[repl].Sinks) != 3 {
		t.Errorf("new net has %d sinks, want 3", len(n.Nets[repl].Sinks))
	}
	for i := 0; i < 3; i++ {
		if n.Insts[i].Inputs[0] != repl {
			t.Errorf("inst %d not reconnected", i)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Self-replacement is a no-op.
	n.ReplaceNetSinks(repl, repl)
	if len(n.Nets[repl].Sinks) != 3 {
		t.Error("self-replacement corrupted sinks")
	}
}
