// Package netlist provides the mapped gate-level netlist data
// structure that every step of the flow operates on: a flat list of
// library-cell instances connected by nets, with pipeline-stage and
// functional-unit tags used for the paper's per-stage timing analysis
// and per-unit area/power breakdowns (Table 1).
package netlist

import (
	"fmt"

	"vipipe/internal/cell"
)

// Stage tags an instance with the pipeline stage it belongs to. A
// flip-flop is tagged with the stage whose outputs it captures, so the
// critical path "of stage S" ends at a DFF tagged S (paper Fig. 3
// analyzes DC, EX and WB endpoint distributions).
type Stage uint8

// Pipeline stages of the 4-stage VEX core.
const (
	StageNone Stage = iota
	StageFetch
	StageDecode
	StageExecute
	StageWriteback
	NumStages
)

var stageNames = [...]string{"NONE", "FETCH", "DECODE", "EXECUTE", "WRITEBACK"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("STAGE(%d)", uint8(s))
}

// NoNet marks an unconnected net reference.
const NoNet = -1

// NoInst marks a missing instance reference (e.g. the driver of a
// primary input net).
const NoInst = -1

// Inst is one placed-library-cell instance.
type Inst struct {
	ID     int
	Name   string
	Kind   cell.Kind
	Inputs []int // net IDs feeding each input pin, in pin order
	Out    int   // net ID driven by the single output pin
	Stage  Stage
	Unit   string // functional unit tag ("regfile", "execute/slot0/alu", ...)
}

// Net is an electrical node. Exactly one driver (an instance output or
// a primary input) and any number of sinks.
type Net struct {
	ID     int
	Name   string
	Driver int // driving instance ID, or NoInst for primary inputs
	Sinks  []Sink
}

// Sink is one (instance, input-pin) load on a net.
type Sink struct {
	Inst int
	Pin  int
}

// Netlist is a flat mapped design.
type Netlist struct {
	Name  string
	Lib   *cell.Library
	Insts []Inst
	Nets  []Net
	// PIs are primary-input net IDs (driven from outside; for the
	// core these are reset vectors and memory-interface inputs).
	PIs []int
	// POs are primary-output net IDs (observed outside).
	POs []int
}

// New returns an empty netlist over the given library.
func New(name string, lib *cell.Library) *Netlist {
	return &Netlist{Name: name, Lib: lib}
}

// NumCells returns the number of instances.
func (n *Netlist) NumCells() int { return len(n.Insts) }

// NumNets returns the number of nets.
func (n *Netlist) NumNets() int { return len(n.Nets) }

// Cell returns the library record of instance i.
func (n *Netlist) Cell(i int) *cell.Cell { return n.Lib.Cell(n.Insts[i].Kind) }

// IsSequential reports whether instance i is a flip-flop.
func (n *Netlist) IsSequential(i int) bool { return n.Cell(i).Sequential }

// AddNet creates a new undriven net and returns its ID.
func (n *Netlist) AddNet(name string) int {
	id := len(n.Nets)
	n.Nets = append(n.Nets, Net{ID: id, Name: name, Driver: NoInst})
	return id
}

// AddPI creates a primary-input net.
func (n *Netlist) AddPI(name string) int {
	id := n.AddNet(name)
	n.PIs = append(n.PIs, id)
	return id
}

// MarkPO marks net id as a primary output.
func (n *Netlist) MarkPO(id int) { n.POs = append(n.POs, id) }

// AddInst creates an instance of kind driving a fresh net and connects
// its inputs. It returns the ID of the driven net. Stage and unit tags
// are taken from the arguments.
func (n *Netlist) AddInst(kind cell.Kind, name string, stage Stage, unit string, inputs ...int) int {
	c := n.Lib.Cell(kind)
	if len(inputs) != c.NumInputs {
		panic(fmt.Sprintf("netlist: %s %q: %d inputs, want %d", c.Name, name, len(inputs), c.NumInputs))
	}
	out := n.AddNet(name + "/Z")
	instID := len(n.Insts)
	n.Insts = append(n.Insts, Inst{
		ID:     instID,
		Name:   name,
		Kind:   kind,
		Inputs: append([]int(nil), inputs...),
		Out:    out,
		Stage:  stage,
		Unit:   unit,
	})
	n.Nets[out].Driver = instID
	for pin, netID := range inputs {
		n.Nets[netID].Sinks = append(n.Nets[netID].Sinks, Sink{Inst: instID, Pin: pin})
	}
	return out
}

// RewireInput reconnects input pin of instance inst from its current
// net to newNet, keeping sink bookkeeping consistent. Used for
// constructing sequential feedback (a flop is created on a placeholder
// net, then rewired once its D expression exists) and for splicing
// level shifters into domain-crossing nets.
func (n *Netlist) RewireInput(inst, pin, newNet int) {
	old := n.Insts[inst].Inputs[pin]
	if old == newNet {
		return
	}
	n.Insts[inst].Inputs[pin] = newNet
	sinks := n.Nets[old].Sinks[:0]
	for _, s := range n.Nets[old].Sinks {
		if !(s.Inst == inst && s.Pin == pin) {
			sinks = append(sinks, s)
		}
	}
	n.Nets[old].Sinks = sinks
	n.Nets[newNet].Sinks = append(n.Nets[newNet].Sinks, Sink{Inst: inst, Pin: pin})
}

// ReplaceNetSinks moves every sink of net old onto net newNet. Used to
// resolve placeholder nets during staged construction: logic is built
// against a placeholder, and once the real signal exists all loads are
// transferred to it in one step.
func (n *Netlist) ReplaceNetSinks(old, newNet int) {
	if old == newNet {
		return
	}
	for _, s := range n.Nets[old].Sinks {
		n.Insts[s.Inst].Inputs[s.Pin] = newNet
		n.Nets[newNet].Sinks = append(n.Nets[newNet].Sinks, s)
	}
	n.Nets[old].Sinks = nil
}

// Validate checks structural consistency: arities, connectivity,
// driver bookkeeping, and absence of combinational cycles. It returns
// the first problem found.
func (n *Netlist) Validate() error {
	for i := range n.Insts {
		inst := &n.Insts[i]
		c := n.Lib.Cell(inst.Kind)
		if len(inst.Inputs) != c.NumInputs {
			return fmt.Errorf("netlist: inst %q arity %d != %d", inst.Name, len(inst.Inputs), c.NumInputs)
		}
		for pin, netID := range inst.Inputs {
			if netID < 0 || netID >= len(n.Nets) {
				return fmt.Errorf("netlist: inst %q pin %d connected to bad net %d", inst.Name, pin, netID)
			}
		}
		if inst.Out < 0 || inst.Out >= len(n.Nets) {
			return fmt.Errorf("netlist: inst %q output on bad net %d", inst.Name, inst.Out)
		}
		if n.Nets[inst.Out].Driver != i {
			return fmt.Errorf("netlist: net %q driver mismatch for inst %q", n.Nets[inst.Out].Name, inst.Name)
		}
	}
	isPI := make(map[int]bool, len(n.PIs))
	for _, id := range n.PIs {
		isPI[id] = true
	}
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.Driver == NoInst && !isPI[net.ID] && len(net.Sinks) > 0 {
			return fmt.Errorf("netlist: net %q has sinks but no driver", net.Name)
		}
		for _, s := range net.Sinks {
			if s.Inst < 0 || s.Inst >= len(n.Insts) || n.Insts[s.Inst].Inputs[s.Pin] != net.ID {
				return fmt.Errorf("netlist: net %q sink bookkeeping broken", net.Name)
			}
		}
	}
	if _, err := n.Levelize(); err != nil {
		return err
	}
	return nil
}

// Levelize returns a topological order of the combinational instances
// (sequential cells excluded, since their outputs are timing startpoints).
// It returns an error when a combinational cycle exists.
func (n *Netlist) Levelize() ([]int, error) {
	// In-degree of each comb instance counting only comb fanin.
	indeg := make([]int32, len(n.Insts))
	order := make([]int, 0, len(n.Insts))
	queue := make([]int, 0, len(n.Insts))
	combCount := 0
	for i := range n.Insts {
		if n.IsSequential(i) {
			continue
		}
		combCount++
		deg := int32(0)
		for _, netID := range n.Insts[i].Inputs {
			d := n.Nets[netID].Driver
			if d != NoInst && !n.IsSequential(d) {
				deg++
			}
		}
		indeg[i] = deg
		if deg == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, s := range n.Nets[n.Insts[i].Out].Sinks {
			j := s.Inst
			if n.IsSequential(j) {
				continue
			}
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != combCount {
		return nil, fmt.Errorf("netlist: combinational cycle detected (%d of %d cells ordered)", len(order), combCount)
	}
	return order, nil
}

// Sequentials returns the IDs of all flip-flop instances.
func (n *Netlist) Sequentials() []int {
	var out []int
	for i := range n.Insts {
		if n.IsSequential(i) {
			out = append(out, i)
		}
	}
	return out
}

// LogicDepth returns the maximum number of combinational cells on any
// register-to-register (or PI-to-register) path, a structural metric
// the paper relates to delay variance (Section 4.3: deeper logic
// averages out random variation).
func (n *Netlist) LogicDepth() int {
	order, err := n.Levelize()
	if err != nil {
		return -1
	}
	depth := make([]int, len(n.Insts))
	maxDepth := 0
	for _, i := range order {
		d := 0
		for _, netID := range n.Insts[i].Inputs {
			drv := n.Nets[netID].Driver
			if drv != NoInst && !n.IsSequential(drv) && depth[drv] > d {
				d = depth[drv]
			}
		}
		depth[i] = d + 1
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	return maxDepth
}
