package netlist

import (
	"fmt"
	"sort"
	"strings"

	"vipipe/internal/cell"
)

// UnitStats aggregates instance counts and area for one functional
// unit group.
type UnitStats struct {
	Unit    string
	Cells   int
	Flops   int
	AreaUM2 float64
}

// DesignStats summarizes a netlist.
type DesignStats struct {
	Cells      int
	Flops      int
	Nets       int
	AreaUM2    float64
	LogicDepth int
	ByKind     map[cell.Kind]int
	ByUnit     []UnitStats // sorted by descending area
}

// Stats computes the design summary. Unit grouping uses the first path
// component of the unit tag ("execute/slot0/alu" groups under
// "execute"), matching the granularity of the paper's Table 1.
func (n *Netlist) Stats() DesignStats {
	ds := DesignStats{
		Cells:  len(n.Insts),
		Nets:   len(n.Nets),
		ByKind: make(map[cell.Kind]int),
	}
	unitArea := make(map[string]*UnitStats)
	for i := range n.Insts {
		inst := &n.Insts[i]
		c := n.Lib.Cell(inst.Kind)
		ds.AreaUM2 += c.AreaUM2
		ds.ByKind[inst.Kind]++
		if c.Sequential {
			ds.Flops++
		}
		u := TopUnit(inst.Unit)
		us := unitArea[u]
		if us == nil {
			us = &UnitStats{Unit: u}
			unitArea[u] = us
		}
		us.Cells++
		us.AreaUM2 += c.AreaUM2
		if c.Sequential {
			us.Flops++
		}
	}
	for _, us := range unitArea {
		ds.ByUnit = append(ds.ByUnit, *us)
	}
	sort.Slice(ds.ByUnit, func(i, j int) bool {
		if ds.ByUnit[i].AreaUM2 != ds.ByUnit[j].AreaUM2 {
			return ds.ByUnit[i].AreaUM2 > ds.ByUnit[j].AreaUM2
		}
		return ds.ByUnit[i].Unit < ds.ByUnit[j].Unit
	})
	ds.LogicDepth = n.LogicDepth()
	return ds
}

// TopUnit returns the first path component of a unit tag.
func TopUnit(unit string) string {
	if i := strings.IndexByte(unit, '/'); i >= 0 {
		return unit[:i]
	}
	if unit == "" {
		return "(untagged)"
	}
	return unit
}

// String renders the summary as a table in the spirit of the paper's
// Table 1 (area column).
func (ds DesignStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cells=%d flops=%d nets=%d area=%.0fum2 depth=%d\n",
		ds.Cells, ds.Flops, ds.Nets, ds.AreaUM2, ds.LogicDepth)
	fmt.Fprintf(&b, "%-14s %10s %8s %8s\n", "unit", "area(um2)", "area%", "cells")
	for _, u := range ds.ByUnit {
		fmt.Fprintf(&b, "%-14s %10.0f %7.2f%% %8d\n", u.Unit, u.AreaUM2, 100*u.AreaUM2/ds.AreaUM2, u.Cells)
	}
	return b.String()
}
