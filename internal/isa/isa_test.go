package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if ADD.String() != "add" || MPYLU.String() != "mpylu" || Op(60).String() != "op(60)" {
		t.Error("op names wrong")
	}
}

func TestPredicates(t *testing.T) {
	if !ADD.WritesReg() || ST.WritesReg() || NOP.WritesReg() || BNEZ.WritesReg() {
		t.Error("WritesReg wrong")
	}
	if !ST.ReadsRb() || ADDI.ReadsRb() || LD.ReadsRb() {
		t.Error("ReadsRb wrong")
	}
	if !LD.ReadsRa() || NOP.ReadsRa() || GOTO.ReadsRa() || !BEQZ.ReadsRa() {
		t.Error("ReadsRa wrong")
	}
	if !ADDI.UsesImm16() || ADD.UsesImm16() || !GOTO.UsesImm16() {
		t.Error("UsesImm16 wrong")
	}
	if !LD.UsesImm12() || ADD.UsesImm12() {
		t.Error("UsesImm12 wrong")
	}
	if !GOTO.IsBranch() || ADD.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !ST.IsMem() || ADD.IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: NOP},
		{Op: ADD, Rd: 1, Ra: 2, Rb: 3},
		{Op: SUB, Rd: 31, Ra: 30, Rb: 29},
		{Op: ADDI, Rd: 5, Ra: 6, Imm16: -1},
		{Op: ADDI, Rd: 5, Ra: 6, Imm16: 32767},
		{Op: ADDI, Rd: 5, Ra: 6, Imm16: -32768},
		{Op: LD, Rd: 7, Ra: 8, Imm12: -4},
		{Op: LD, Rd: 7, Ra: 8, Imm12: 2047},
		{Op: ST, Rb: 9, Ra: 10, Imm12: -2048},
		{Op: BEQZ, Ra: 3, Imm16: -100},
		{Op: GOTO, Imm16: 12},
		{Op: MPYLU, Rd: 11, Ra: 12, Rb: 13},
	}
	for _, in := range cases {
		got := Decode(Encode(in))
		// Normalize fields the op does not use before comparing.
		want := in
		if !want.Op.UsesImm16() {
			want.Imm16 = got.Imm16
		}
		if !want.Op.UsesImm12() {
			want.Imm12 = got.Imm12
		}
		if !want.Op.ReadsRb() && !want.Op.UsesImm16() {
			want.Rb = got.Rb
		}
		if got.Op != want.Op || got.Rd != want.Rd || got.Ra != want.Ra {
			t.Errorf("roundtrip %v -> %v", in, got)
		}
		if want.Op.UsesImm16() && got.Imm16 != want.Imm16 {
			t.Errorf("%v: imm16 %d -> %d", in, want.Imm16, got.Imm16)
		}
		if want.Op.UsesImm12() && got.Imm12 != want.Imm12 {
			t.Errorf("%v: imm12 %d -> %d", in, want.Imm12, got.Imm12)
		}
		if want.Op.ReadsRb() && !want.Op.UsesImm16() && got.Rb != want.Rb {
			t.Errorf("%v: rb %d -> %d", in, want.Rb, got.Rb)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(rd, ra, rb uint8, imm int16) bool {
		in := Instr{Op: ADD, Rd: rd & 31, Ra: ra & 31, Rb: rb & 31}
		d := Decode(Encode(in))
		if d.Op != ADD || d.Rd != in.Rd || d.Ra != in.Ra || d.Rb != in.Rb {
			return false
		}
		im := Instr{Op: ADDI, Rd: rd & 31, Ra: ra & 31, Imm16: int32(imm)}
		di := Decode(Encode(im))
		return di.Imm16 == int32(imm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeBundlePadsNops(t *testing.T) {
	b := Bundle{{Op: ADD, Rd: 1, Ra: 2, Rb: 3}}
	ws := EncodeBundle(b, 4)
	if len(ws) != 4 {
		t.Fatalf("len = %d", len(ws))
	}
	if Decode(ws[0]).Op != ADD {
		t.Error("slot 0 wrong")
	}
	for i := 1; i < 4; i++ {
		if Decode(ws[i]).Op != NOP {
			t.Errorf("slot %d not NOP", i)
		}
	}
}

func TestAssembleBasic(t *testing.T) {
	src := `
# FIR-ish fragment
start:
  addi $r1, $r0, 10 ; add $r2, $r0, $r0 ; nop ; nop
loop:
  ld $r3, 4($r2) ; mpylu $r4, $r3, $r3
  st $r4, 0($r2) ; addi $r2, $r2, 1
  bnez $r1, loop ; addi $r1, $r1, -1
  goto start
`
	bundles, err := Assemble(src, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 5 {
		t.Fatalf("bundles = %d, want 5", len(bundles))
	}
	if bundles[0][0].Op != ADDI || bundles[0][0].Imm16 != 10 {
		t.Errorf("bundle0 slot0 = %v", bundles[0][0])
	}
	if bundles[1][0].Op != LD || bundles[1][0].Imm12 != 4 || bundles[1][0].Rd != 3 {
		t.Errorf("ld decoded wrong: %v", bundles[1][0])
	}
	if bundles[2][0].Op != ST || bundles[2][0].Rb != 4 || bundles[2][0].Ra != 2 {
		t.Errorf("st decoded wrong: %v", bundles[2][0])
	}
	// bnez at bundle 3 targets loop (bundle 1): offset -2.
	if bundles[3][0].Op != BNEZ || bundles[3][0].Imm16 != -2 {
		t.Errorf("bnez = %v", bundles[3][0])
	}
	// goto at bundle 4 targets start (bundle 0): offset -4.
	if bundles[4][0].Op != GOTO || bundles[4][0].Imm16 != -4 {
		t.Errorf("goto = %v", bundles[4][0])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frob $r1, $r2, $r3",          // unknown mnemonic
		"add $r1, $r2",                // missing operand
		"add $r1, $r2, $r99",          // bad register
		"nop ; nop ; nop ; nop ; nop", // too many slots
		"nop ; bnez $r1, x",           // branch outside slot 0
		"bnez $r1, nowhere",           // undefined label
		"l1: nop\nl1: nop",            // duplicate label
		"ld $r1, 5000($r2)",           // offset out of range
		"addi $r1, $r2, 70000",        // imm out of range
		"ld $r1, $r2",                 // bad memory operand
		"1bad: nop",                   // bad label
		"nop $r1",                     // nop with operands
		"st $r1, x($r2)",              // bad offset
		"goto $r1, l",                 // goto arity
		"beqz $r1, $$",                // bad target
	}
	for _, src := range cases {
		if _, err := Assemble(src, 4, 31); err == nil {
			t.Errorf("accepted bad program %q", src)
		}
	}
}

func TestAssembleEmptySlotsAreNops(t *testing.T) {
	bundles, err := Assemble("add $r1, $r2, $r3 ; ; nop", 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles[0]) != 3 || bundles[0][1].Op != NOP {
		t.Errorf("bundle = %v", bundles[0])
	}
}

func TestAssembleNumericBranch(t *testing.T) {
	bundles, err := Assemble("goto -3", 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if bundles[0][0].Imm16 != -3 {
		t.Errorf("goto offset = %d", bundles[0][0].Imm16)
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"nop":               {Op: NOP},
		"add $r1, $r2, $r3": {Op: ADD, Rd: 1, Ra: 2, Rb: 3},
		"addi $r1, $r2, -5": {Op: ADDI, Rd: 1, Ra: 2, Imm16: -5},
		"ld $r1, 8($r2)":    {Op: LD, Rd: 1, Ra: 2, Imm12: 8},
		"st $r3, -4($r2)":   {Op: ST, Rb: 3, Ra: 2, Imm12: -4},
		"bnez $r1, +7":      {Op: BNEZ, Ra: 1, Imm16: 7},
		"goto -2":           {Op: GOTO, Imm16: -2},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestLabelOnlyLinesAndInlineLabels(t *testing.T) {
	src := "a:\nb: nop\n  goto a"
	bundles, err := Assemble(src, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("bundles = %d", len(bundles))
	}
	if bundles[1][0].Imm16 != -1 {
		t.Errorf("goto a offset = %d, want -1", bundles[1][0].Imm16)
	}
}
