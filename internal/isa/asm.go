package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses VLIW assembly text into bundles. Syntax:
//
//	# or // comment to end of line
//	label:                  (bundle labels, PC-relative branch targets)
//	op ; op ; op ; op       (one line per bundle, ';' separates slots)
//
// Operations:
//
//	add $r1, $r2, $r3        register-register ALU/compare/multiply ops
//	addi $r1, $r2, -5        immediate ops
//	ld $r1, 8($r2)           load
//	st $r3, -4($r2)          store (value, offset(base))
//	beqz $r1, label          branches (slot 0 only)
//	goto label
//	nop
//
// maxReg is the highest usable register index (registers are $r0 ..
// $rmaxReg); slots is the machine's issue width.
func Assemble(src string, slots, maxReg int) ([]Bundle, error) {
	type pending struct {
		bundle, slot int
		label        string
		line         int
	}
	labels := make(map[string]int)
	var bundles []Bundle
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by code on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(bundles)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		parts := strings.Split(line, ";")
		if len(parts) > slots {
			return nil, fmt.Errorf("isa: line %d: %d operations exceed %d slots", lineNo+1, len(parts), slots)
		}
		bundle := make(Bundle, 0, len(parts))
		for slot, part := range parts {
			part = strings.TrimSpace(part)
			if part == "" {
				bundle = append(bundle, Instr{Op: NOP})
				continue
			}
			in, labelRef, err := parseOp(part, maxReg)
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", lineNo+1, err)
			}
			if in.Op.IsBranch() && slot != 0 {
				return nil, fmt.Errorf("isa: line %d: branch %q outside slot 0", lineNo+1, part)
			}
			if labelRef != "" {
				fixups = append(fixups, pending{len(bundles), slot, labelRef, lineNo + 1})
			}
			bundle = append(bundle, in)
		}
		bundles = append(bundles, bundle)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", f.line, f.label)
		}
		off := target - f.bundle
		if off < -(1<<15) || off >= 1<<15 {
			return nil, fmt.Errorf("isa: line %d: branch to %q out of range", f.line, f.label)
		}
		bundles[f.bundle][f.slot].Imm16 = int32(off)
	}
	return bundles, nil
}

// parseOp parses one operation; when the operation references a label
// its name is returned for fixup.
func parseOp(s string, maxReg int) (Instr, string, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	if len(fields) == 0 {
		return Instr{}, "", fmt.Errorf("empty operation")
	}
	mnemonic := strings.ToLower(fields[0])
	op := opByName(mnemonic)
	if op == NumOps {
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := fields[1:]
	reg := func(a string) (uint8, error) {
		a = strings.TrimPrefix(strings.TrimPrefix(a, "$"), "r")
		v, err := strconv.Atoi(a)
		if err != nil || v < 0 || v > maxReg {
			return 0, fmt.Errorf("bad register %q", a)
		}
		return uint8(v), nil
	}
	in := Instr{Op: op}
	var err error
	switch {
	case op == NOP:
		if len(args) != 0 {
			return in, "", fmt.Errorf("nop takes no operands")
		}
	case op == GOTO:
		if len(args) != 1 {
			return in, "", fmt.Errorf("goto needs a target")
		}
		return parseBranchTarget(in, args[0])
	case op == BEQZ || op == BNEZ:
		if len(args) != 2 {
			return in, "", fmt.Errorf("%s needs register and target", op)
		}
		if in.Ra, err = reg(args[0]); err != nil {
			return in, "", err
		}
		return parseBranchTarget(in, args[1])
	case op == LD || op == ST:
		if len(args) != 2 {
			return in, "", fmt.Errorf("%s needs value and offset(base)", op)
		}
		var valueReg uint8
		if valueReg, err = reg(args[0]); err != nil {
			return in, "", err
		}
		off, base, perr := parseMemOperand(args[1])
		if perr != nil {
			return in, "", perr
		}
		if in.Ra, err = reg(base); err != nil {
			return in, "", err
		}
		if off < -(1<<11) || off >= 1<<11 {
			return in, "", fmt.Errorf("offset %d out of 12-bit range", off)
		}
		in.Imm12 = int32(off)
		if op == LD {
			in.Rd = valueReg
		} else {
			in.Rb = valueReg
		}
	case op.UsesImm16():
		if len(args) != 3 {
			return in, "", fmt.Errorf("%s needs rd, ra, imm", op)
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return in, "", err
		}
		if in.Ra, err = reg(args[1]); err != nil {
			return in, "", err
		}
		v, perr := strconv.ParseInt(args[2], 0, 32)
		if perr != nil {
			return in, "", fmt.Errorf("bad immediate %q", args[2])
		}
		if v < -(1<<15) || v >= 1<<16 {
			return in, "", fmt.Errorf("immediate %d out of 16-bit range", v)
		}
		in.Imm16 = int32(v)
	default: // register-register
		if len(args) != 3 {
			return in, "", fmt.Errorf("%s needs rd, ra, rb", op)
		}
		if in.Rd, err = reg(args[0]); err != nil {
			return in, "", err
		}
		if in.Ra, err = reg(args[1]); err != nil {
			return in, "", err
		}
		if in.Rb, err = reg(args[2]); err != nil {
			return in, "", err
		}
	}
	return in, "", nil
}

func parseBranchTarget(in Instr, arg string) (Instr, string, error) {
	if v, err := strconv.ParseInt(arg, 0, 32); err == nil {
		if v < -(1<<15) || v >= 1<<15 {
			return in, "", fmt.Errorf("branch offset %d out of range", v)
		}
		in.Imm16 = int32(v)
		return in, "", nil
	}
	if !isIdent(arg) {
		return in, "", fmt.Errorf("bad branch target %q", arg)
	}
	return in, arg, nil
}

func parseMemOperand(s string) (off int64, base string, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, "", fmt.Errorf("bad memory operand %q", s)
	}
	offStr := s[:open]
	if offStr == "" {
		offStr = "0"
	}
	off, err = strconv.ParseInt(offStr, 0, 32)
	if err != nil {
		return 0, "", fmt.Errorf("bad offset in %q", s)
	}
	return off, s[open+1 : len(s)-1], nil
}

func opByName(name string) Op {
	for i, n := range opNames {
		if n == name {
			return Op(i)
		}
	}
	return NumOps
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || i > 0 && r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return true
}
