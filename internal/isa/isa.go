// Package isa defines the VEX-like VLIW instruction set of the target
// core: 32-bit operations grouped into one bundle per cycle (one
// operation per execution slot), the binary encoding shared by the
// hardware decoder (internal/vex) and the behavioral simulator
// (internal/vexsim), and a small assembler.
//
// The ISA is a reduced but structurally faithful stand-in for the VEX
// architecture of Fisher et al. used in the paper: a clustered 32-bit
// VLIW with ALU, shifter, compare, memory-address and multiply
// operations per slot, and branches resolved in the decode stage with
// static predict-not-taken.
package isa

import "fmt"

// Op enumerates operation codes. The value is the 5-bit opcode field.
type Op uint8

// Operation codes.
const (
	NOP    Op = 0  // no operation
	ADD    Op = 1  // rd = ra + rb
	SUB    Op = 2  // rd = ra - rb
	AND    Op = 3  // rd = ra & rb
	OR     Op = 4  // rd = ra | rb
	XOR    Op = 5  // rd = ra ^ rb
	SLL    Op = 6  // rd = ra << rb
	SRL    Op = 7  // rd = ra >> rb (logical)
	SRA    Op = 8  // rd = ra >> rb (arithmetic)
	CMPEQ  Op = 9  // rd = (ra == rb) ? 1 : 0
	CMPLT  Op = 10 // rd = (ra < rb) signed
	CMPLTU Op = 11 // rd = (ra < rb) unsigned
	MPYLU  Op = 12 // rd = lowhalf(ra) * lowhalf(rb), unsigned
	ADDI   Op = 13 // rd = ra + sext(imm16)
	ANDI   Op = 14 // rd = ra & zext(imm16)
	ORI    Op = 15 // rd = ra | zext(imm16)
	LD     Op = 16 // rd = mem[ra + sext(imm12)]
	ST     Op = 17 // mem[ra + sext(imm12)] = rb
	BEQZ   Op = 18 // if ra == 0: pc = pc + sext(imm16)   (slot 0 only)
	BNEZ   Op = 19 // if ra != 0: pc = pc + sext(imm16)   (slot 0 only)
	GOTO   Op = 20 // pc = pc + sext(imm16)               (slot 0 only)
	NumOps Op = 21
)

var opNames = [...]string{
	"nop", "add", "sub", "and", "or", "xor", "sll", "srl", "sra",
	"cmpeq", "cmplt", "cmpltu", "mpylu", "addi", "andi", "ori",
	"ld", "st", "beqz", "bnez", "goto",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Operand-usage predicates used by both the assembler and the
// hardware control decoder.

// WritesReg reports whether the op writes rd.
func (o Op) WritesReg() bool {
	switch o {
	case NOP, ST, BEQZ, BNEZ, GOTO:
		return false
	}
	return o < NumOps
}

// ReadsRb reports whether the op reads the rb register operand.
func (o Op) ReadsRb() bool {
	switch o {
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, CMPEQ, CMPLT, CMPLTU, MPYLU, ST:
		return true
	}
	return false
}

// ReadsRa reports whether the op reads the ra register operand.
func (o Op) ReadsRa() bool {
	switch o {
	case NOP, GOTO:
		return false
	}
	return o < NumOps
}

// UsesImm16 reports whether the op consumes the 16-bit immediate.
func (o Op) UsesImm16() bool {
	switch o {
	case ADDI, ANDI, ORI, BEQZ, BNEZ, GOTO:
		return true
	}
	return false
}

// UsesImm12 reports whether the op consumes the 12-bit memory offset.
func (o Op) UsesImm12() bool { return o == LD || o == ST }

// IsBranch reports whether the op redirects the PC.
func (o Op) IsBranch() bool { return o == BEQZ || o == BNEZ || o == GOTO }

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == LD || o == ST }

// Instr is one decoded operation.
type Instr struct {
	Op    Op
	Rd    uint8 // destination register
	Ra    uint8 // first source register
	Rb    uint8 // second source register
	Imm16 int32 // sign- or zero-extended by the consumer per op
	Imm12 int32 // memory offset, sign-extended
}

// Bundle is one VLIW instruction word: one operation per slot.
type Bundle []Instr

// Encoding layout (32 bits per operation):
//
//	[31:27] opcode
//	[26:22] rd
//	[21:17] ra
//	[16:12] rb
//	[15: 0] imm16 (overlaps rb; ops use one or the other)
//	[11: 0] imm12 (memory ops only; does not overlap rb)
const (
	opShift = 27
	rdShift = 22
	raShift = 17
	rbShift = 12

	regMask   = 0x1F
	imm16Mask = 0xFFFF
	imm12Mask = 0xFFF
)

// Encode packs an instruction into its 32-bit binary form.
func Encode(in Instr) uint32 {
	w := uint32(in.Op) << opShift
	w |= uint32(in.Rd&regMask) << rdShift
	w |= uint32(in.Ra&regMask) << raShift
	switch {
	case in.Op.UsesImm16():
		w |= uint32(in.Imm16) & imm16Mask
	case in.Op.UsesImm12():
		w |= uint32(in.Rb&regMask) << rbShift
		w |= uint32(in.Imm12) & imm12Mask
	default:
		w |= uint32(in.Rb&regMask) << rbShift
	}
	return w
}

// Decode unpacks a 32-bit operation word.
func Decode(w uint32) Instr {
	op := Op(w >> opShift)
	in := Instr{
		Op: op,
		Rd: uint8(w >> rdShift & regMask),
		Ra: uint8(w >> raShift & regMask),
		Rb: uint8(w >> rbShift & regMask),
	}
	in.Imm16 = signExtend(int32(w&imm16Mask), 16)
	in.Imm12 = signExtend(int32(w&imm12Mask), 12)
	return in
}

func signExtend(v int32, bits uint) int32 {
	shift := 32 - bits
	return v << shift >> shift
}

// EncodeBundle packs a bundle into per-slot words, padding missing
// slots with NOPs up to the given slot count.
func EncodeBundle(b Bundle, slots int) []uint32 {
	out := make([]uint32, slots)
	for i := 0; i < slots; i++ {
		if i < len(b) {
			out[i] = Encode(b[i])
		} else {
			out[i] = Encode(Instr{Op: NOP})
		}
	}
	return out
}

func (in Instr) String() string {
	switch {
	case in.Op == NOP:
		return "nop"
	case in.Op.IsBranch():
		if in.Op == GOTO {
			return fmt.Sprintf("goto %+d", in.Imm16)
		}
		return fmt.Sprintf("%s $r%d, %+d", in.Op, in.Ra, in.Imm16)
	case in.Op == LD:
		return fmt.Sprintf("ld $r%d, %d($r%d)", in.Rd, in.Imm12, in.Ra)
	case in.Op == ST:
		return fmt.Sprintf("st $r%d, %d($r%d)", in.Rb, in.Imm12, in.Ra)
	case in.Op.UsesImm16():
		return fmt.Sprintf("%s $r%d, $r%d, %d", in.Op, in.Rd, in.Ra, in.Imm16)
	default:
		return fmt.Sprintf("%s $r%d, $r%d, $r%d", in.Op, in.Rd, in.Ra, in.Rb)
	}
}
