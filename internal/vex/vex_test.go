package vex

import (
	"strings"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Width: 7, Regs: 8, Slots: 2, PCBits: 6},
		{Width: 8, Regs: 3, Slots: 2, PCBits: 6},
		{Width: 8, Regs: 64, Slots: 2, PCBits: 6},
		{Width: 8, Regs: 8, Slots: 0, PCBits: 6},
		{Width: 8, Regs: 8, Slots: 2, PCBits: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigDerivedWidths(t *testing.T) {
	c := DefaultConfig()
	if c.RegBits() != 5 || c.AmtBits() != 5 {
		t.Errorf("derived widths wrong: %d/%d", c.RegBits(), c.AmtBits())
	}
	s := SmallConfig()
	if s.RegBits() != 4 || s.AmtBits() != 3 {
		t.Errorf("small derived widths wrong: %d/%d", s.RegBits(), s.AmtBits())
	}
}

func TestBuildSmallCoreValid(t *testing.T) {
	core, err := Build(SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	if core.NL.NumCells() < 500 {
		t.Errorf("suspiciously small core: %d cells", core.NL.NumCells())
	}
	if len(core.InstrIn) != 2 || len(core.LoadData) != 2 {
		t.Error("interface shape wrong")
	}
	if len(core.RegQ) != 16 || len(core.RegQ[1]) != 8 {
		t.Error("RegQ shape wrong")
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(Config{Width: 5}, cell.Default65nm()); err == nil {
		t.Error("bad config accepted")
	}
}

func TestCoreStageAndUnitTags(t *testing.T) {
	core, err := Build(SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	stats := core.NL.Stats()
	units := make(map[string]bool)
	for _, u := range stats.ByUnit {
		units[u.Unit] = true
	}
	for _, want := range []string{"regfile", "execute", "decode", "fetch", "writeback", "piperegs"} {
		if !units[want] {
			t.Errorf("missing unit group %q (have %v)", want, stats.ByUnit)
		}
	}
	// Every pipeline stage must own at least one flop endpoint.
	haveStage := make(map[netlist.Stage]bool)
	for i := range core.NL.Insts {
		if core.NL.IsSequential(i) {
			haveStage[core.NL.Insts[i].Stage] = true
		}
	}
	for _, st := range []netlist.Stage{netlist.StageFetch, netlist.StageDecode, netlist.StageExecute, netlist.StageWriteback} {
		if !haveStage[st] {
			t.Errorf("no flop endpoints tagged %v", st)
		}
	}
}

func TestDefaultCoreTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size core build")
	}
	core, err := Build(DefaultConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	ds := core.NL.Stats()
	share := make(map[string]float64)
	for _, u := range ds.ByUnit {
		share[u.Unit] = u.AreaUM2 / ds.AreaUM2
	}
	// Paper Table 1 shape: the register file dominates area, the
	// execute stage is second, fetch is negligible.
	if share["regfile"] < 0.30 {
		t.Errorf("regfile share %.2f, want dominant (paper: 0.53)", share["regfile"])
	}
	if ds.ByUnit[0].Unit != "regfile" {
		t.Errorf("largest unit is %q, want regfile", ds.ByUnit[0].Unit)
	}
	if share["execute"] < 0.10 {
		t.Errorf("execute share %.2f too small (paper: 0.26)", share["execute"])
	}
	if share["execute"] > share["regfile"] {
		t.Error("execute outgrew the register file")
	}
	if share["fetch"] > 0.02 {
		t.Errorf("fetch share %.3f, want negligible (paper: 0.0009)", share["fetch"])
	}
	if share["decode"] > share["execute"] {
		t.Errorf("decode (%.2f) outgrew execute (%.2f)", share["decode"], share["execute"])
	}
}

func TestUnitTagsAreHierarchical(t *testing.T) {
	core, err := Build(SmallConfig(), cell.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	var sawFwd, sawAlu, sawMult, sawBypass bool
	for i := range core.NL.Insts {
		u := core.NL.Insts[i].Unit
		switch {
		case u == "execute/fwd":
			sawFwd = true
		case strings.HasSuffix(u, "/alu"):
			sawAlu = true
		case strings.HasSuffix(u, "/mult"):
			sawMult = true
		case u == "decode/bypass":
			sawBypass = true
		}
	}
	if !sawFwd || !sawAlu || !sawMult || !sawBypass {
		t.Errorf("missing unit tags: fwd=%v alu=%v mult=%v bypass=%v", sawFwd, sawAlu, sawMult, sawBypass)
	}
}

func TestBuildDeterministic(t *testing.T) {
	lib := cell.Default65nm()
	a, err := Build(SmallConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(SmallConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	if a.NL.NumCells() != b.NL.NumCells() || a.NL.NumNets() != b.NL.NumNets() {
		t.Fatal("core size differs across builds")
	}
	for i := range a.NL.Insts {
		ia, ib := &a.NL.Insts[i], &b.NL.Insts[i]
		if ia.Kind != ib.Kind || ia.Out != ib.Out || ia.Name != ib.Name {
			t.Fatalf("instance %d differs: %+v vs %+v", i, ia, ib)
		}
		for p := range ia.Inputs {
			if ia.Inputs[p] != ib.Inputs[p] {
				t.Fatalf("instance %d pin %d differs", i, p)
			}
		}
	}
}
