// Package vex builds the gate-level netlist of the paper's target
// design: a VEX-like 4-stage, multi-slot VLIW processor core. It
// substitutes for the LISATek-generated RTL plus Synopsys logic
// synthesis of the paper: the core is emitted directly as a mapped
// netlist with pipeline-stage and functional-unit tags.
//
// Microarchitecture (Section 4.2 of the paper):
//
//   - 4 pipeline stages: fetch, decode, execute, write-back.
//   - Configurable issue width; each execute slot has an ALU with a
//     shifter in series (shift-and-accumulate structure), a compare
//     unit checking ALU-result flags, an address-computation adder for
//     loads/stores, and a multiplier in parallel.
//   - Two forwarding units for read-after-write hazards: one in the
//     decode stage (register-file read bypass from write-back) and one
//     in the execute stage (operand forwarding from the EX/WB pipeline
//     register, including load data).
//   - Branch unit in the decode stage with static predict-not-taken;
//     a taken branch kills exactly the one wrong-path fetch.
//   - The register file is fully synthesized from standard cells, so
//     it dominates the area breakdown as in the paper's Table 1.
//   - Program and data memories are behavioral single-cycle devices
//     outside the netlist (as in the paper); the core exposes fetch
//     and load/store interfaces as primary inputs/outputs.
//
// Exposed-pipeline constraint (VLIW-style, resolved by the compiler in
// the paper's toolchain): a branch condition register must be produced
// at least two bundles before the branch that reads it; all other
// read-after-write dependences are fully forwarded.
package vex

import (
	"fmt"

	"vipipe/internal/cell"
	"vipipe/internal/isa"
	"vipipe/internal/netlist"
	"vipipe/internal/rtl"
)

// Config selects the core geometry.
type Config struct {
	Width  int // data-path width in bits (even, power of two >= 8)
	Regs   int // number of architectural registers (power of two, 2..32)
	Slots  int // issue width
	PCBits int // program counter width (program memory holds 2^PCBits bundles)
}

// DefaultConfig is the paper's target: a 32-bit 4-issue core
// ("4 parallel slots were instantiated in the execution stage").
func DefaultConfig() Config {
	return Config{Width: 32, Regs: 32, Slots: 4, PCBits: 10}
}

// SmallConfig is a reduced core for fast tests: 8-bit, 2-issue,
// 16 registers.
func SmallConfig() Config {
	return Config{Width: 8, Regs: 16, Slots: 2, PCBits: 6}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Width < 8 || c.Width&(c.Width-1) != 0:
		return fmt.Errorf("vex: width %d must be a power of two >= 8", c.Width)
	case c.Regs < 2 || c.Regs > 32 || c.Regs&(c.Regs-1) != 0:
		return fmt.Errorf("vex: %d registers (need power of two in [2,32])", c.Regs)
	case c.Slots < 1 || c.Slots > 8:
		return fmt.Errorf("vex: %d slots out of range [1,8]", c.Slots)
	case c.PCBits < 2 || c.PCBits > 16:
		return fmt.Errorf("vex: PC width %d out of range [2,16]", c.PCBits)
	}
	return nil
}

// RegBits returns the register-index width used by the hardware.
func (c Config) RegBits() int {
	n := 0
	for 1<<n < c.Regs {
		n++
	}
	return n
}

// AmtBits returns the shift-amount width, log2(Width).
func (c Config) AmtBits() int {
	n := 0
	for 1<<n < c.Width {
		n++
	}
	return n
}

// Core is the built processor netlist plus its interface nets.
type Core struct {
	Cfg Config
	NL  *netlist.Netlist

	// Fetch interface: the testbench drives InstrIn with the program
	// word at address PCOut every cycle.
	PCOut   netlist.Word   // primary output: fetch address
	InstrIn []netlist.Word // primary input per slot: 32-bit operation

	// Data-memory interface, valid during the write-back stage of
	// each memory operation. The testbench applies stores and then
	// supplies LoadData = mem[AddrOut] in the same cycle.
	AddrOut   []netlist.Word // per slot: effective address
	StDataOut []netlist.Word // per slot: store data
	StEnOut   []int          // per slot: store enable
	LdEnOut   []int          // per slot: load pending
	LoadData  []netlist.Word // primary input per slot: load result

	// RegQ exposes register-file storage nets for verification:
	// RegQ[r] is the Q bus of architectural register r.
	RegQ []netlist.Word
}

// Build constructs the core netlist over the given library.
func Build(cfg Config, lib *cell.Library) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		cfg: cfg,
		b:   netlist.NewBuilder("vexcore", lib),
	}
	core := g.build()
	if err := core.NL.Validate(); err != nil {
		return nil, fmt.Errorf("vex: built netlist invalid: %w", err)
	}
	return core, nil
}

// gen carries construction state.
type gen struct {
	cfg Config
	b   *netlist.Builder
}

// lateWord creates a register bank whose D inputs are bound later:
// it returns the Q bus and a setter that rewires each flop to its
// real data net.
func (g *gen) lateWord(width int) (q netlist.Word, bind func(d netlist.Word)) {
	ph := g.b.Const(false)
	q = g.b.DFFWord(netlist.FanWord(ph, width))
	return q, func(d netlist.Word) {
		if len(d) != width {
			panic(fmt.Sprintf("vex: late bind width %d != %d", len(d), width))
		}
		for i, qn := range q {
			g.b.NL.RewireInput(g.b.NL.Nets[qn].Driver, 0, d[i])
		}
	}
}

// lateBit is lateWord for a single flop.
func (g *gen) lateBit() (q int, bind func(d int)) {
	ph := g.b.Const(false)
	qn := g.b.DFF(ph)
	return qn, func(d int) {
		g.b.NL.RewireInput(g.b.NL.Nets[qn].Driver, 0, d)
	}
}

// slotCtl is the decoded control word of one slot, registered into
// the D/E pipeline register.
type slotCtl struct {
	valA, valB netlist.Word // operand values after decode bypass
	memOff     netlist.Word // sign-extended load/store offset
	ra, rb, rd netlist.Word // register indices
	writesReg  int          // rd written and rd != 0
	readsRb    int          // operand B is a register (forwardable)
	selAddSub  int
	selAnd     int
	selOr      int
	selXor     int
	selShift   int
	shRight    int
	shArith    int
	selCmp     int
	cmpEq      int
	cmpLt      int
	cmpLtu     int
	selMult    int
	aluSub     int
	isLoad     int
	isStore    int
}

func (g *gen) build() *Core {
	b := g.b
	cfg := g.cfg
	W, RB, PCB := cfg.Width, cfg.RegBits(), cfg.PCBits

	core := &Core{Cfg: cfg, NL: b.NL}

	// ------------------------------------------------------------
	// Fetch stage: PC register, incrementer, branch redirect mux.
	// ------------------------------------------------------------
	restore := b.Scope(netlist.StageFetch, "fetch")
	pcQ, bindPC := g.lateWord(PCB)
	pcPlus1, _ := rtl.Incrementer(b, pcQ)
	core.PCOut = pcQ
	b.OutputWord(pcQ)
	restore()

	// Instruction-word primary inputs, one 32-bit op per slot.
	core.InstrIn = make([]netlist.Word, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		core.InstrIn[s] = b.InputWord(fmt.Sprintf("instr%d", s), 32)
	}

	// F/D pipeline register: instruction words, bundle PC, valid.
	restore = b.Scope(netlist.StageFetch, "piperegs/fd")
	fdInstr := make([]netlist.Word, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		fdInstr[s] = b.DFFWord(core.InstrIn[s])
	}
	fdPC := b.DFFWord(pcQ)
	fdValid, bindFDValid := g.lateBit()
	restore()

	// ------------------------------------------------------------
	// Write-back placeholders: the decode bypass and the register
	// file consume the WB write ports before they exist.
	// ------------------------------------------------------------
	wbAddrPH := make([]netlist.Word, cfg.Slots)
	wbDataPH := make([]netlist.Word, cfg.Slots)
	wbEnPH := make([]int, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		wbAddrPH[s] = make(netlist.Word, RB)
		for i := range wbAddrPH[s] {
			wbAddrPH[s][i] = b.NL.AddNet(fmt.Sprintf("ph/wbaddr%d[%d]", s, i))
		}
		wbDataPH[s] = make(netlist.Word, W)
		for i := range wbDataPH[s] {
			wbDataPH[s][i] = b.NL.AddNet(fmt.Sprintf("ph/wbdata%d[%d]", s, i))
		}
		wbEnPH[s] = b.NL.AddNet(fmt.Sprintf("ph/wben%d", s))
	}

	// ------------------------------------------------------------
	// Register file: 2 read ports per slot, 1 write port per slot.
	// ------------------------------------------------------------
	restore = b.Scope(netlist.StageWriteback, "regfile")
	readAddrs := make([]netlist.Word, 2*cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		readAddrs[2*s] = fdInstr[s][17 : 17+RB]   // ra field
		readAddrs[2*s+1] = fdInstr[s][12 : 12+RB] // rb field
	}
	writePorts := make([]rtl.WritePort, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		writePorts[s] = rtl.WritePort{Addr: wbAddrPH[s], Data: wbDataPH[s], En: wbEnPH[s]}
	}
	rf := rtl.RegisterFile(b, cfg.Regs, W, readAddrs, writePorts)
	core.RegQ = rf.Q
	restore()

	// ------------------------------------------------------------
	// Decode stage: control decode, bypass (forwarding unit B),
	// operand selection, branch unit.
	// ------------------------------------------------------------
	ctls := make([]slotCtl, cfg.Slots)
	var brTaken int
	var brTarget netlist.Word
	for s := 0; s < cfg.Slots; s++ {
		restore = b.Scope(netlist.StageDecode, fmt.Sprintf("decode/slot%d", s))
		iw := fdInstr[s]
		opcode := iw[27:32]
		lines := rtl.Decoder(b, opcode)
		line := func(op isa.Op) int { return lines[int(op)] }
		orOf := func(ops ...isa.Op) int {
			ns := make([]int, len(ops))
			for i, op := range ops {
				ns[i] = line(op)
			}
			return b.OrTree(ns)
		}

		c := &ctls[s]
		c.ra = iw[17 : 17+RB]
		c.rb = iw[12 : 12+RB]
		c.rd = iw[22 : 22+RB]
		writes := orOf(isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
			isa.SLL, isa.SRL, isa.SRA, isa.CMPEQ, isa.CMPLT, isa.CMPLTU,
			isa.MPYLU, isa.ADDI, isa.ANDI, isa.ORI, isa.LD)
		rdNonZero := b.OrTree(c.rd)
		c.writesReg = b.And(writes, rdNonZero)
		c.readsRb = orOf(isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
			isa.SLL, isa.SRL, isa.SRA, isa.CMPEQ, isa.CMPLT, isa.CMPLTU,
			isa.MPYLU, isa.ST)
		immSext := line(isa.ADDI)
		immZext := orOf(isa.ANDI, isa.ORI)
		c.selAddSub = orOf(isa.ADD, isa.SUB, isa.ADDI)
		c.selAnd = orOf(isa.AND, isa.ANDI)
		c.selOr = orOf(isa.OR, isa.ORI)
		c.selXor = line(isa.XOR)
		c.selShift = orOf(isa.SLL, isa.SRL, isa.SRA)
		c.shRight = orOf(isa.SRL, isa.SRA)
		c.shArith = line(isa.SRA)
		c.selCmp = orOf(isa.CMPEQ, isa.CMPLT, isa.CMPLTU)
		c.cmpEq = line(isa.CMPEQ)
		c.cmpLt = line(isa.CMPLT)
		c.cmpLtu = line(isa.CMPLTU)
		c.selMult = line(isa.MPYLU)
		c.aluSub = orOf(isa.SUB, isa.CMPEQ, isa.CMPLT, isa.CMPLTU)
		c.isLoad = line(isa.LD)
		c.isStore = line(isa.ST)
		restore()

		// Forwarding unit B: register-file read bypass from the
		// write-back stage (the paper's second forwarding unit).
		restore = b.Scope(netlist.StageDecode, "decode/bypass")
		raVal := g.bypass(rf.Read[2*s], c.ra, wbAddrPH, wbDataPH, wbEnPH)
		rbVal := g.bypass(rf.Read[2*s+1], c.rb, wbAddrPH, wbDataPH, wbEnPH)
		restore()

		restore = b.Scope(netlist.StageDecode, fmt.Sprintf("decode/slot%d", s))
		sext16 := rtl.SignExtend(b, iw[0:16], W)
		zext16 := rtl.ZeroExtend(b, iw[0:16], W)
		vB := b.MuxWord(rbVal, sext16, immSext)
		vB = b.MuxWord(vB, zext16, immZext)
		c.valA = raVal
		c.valB = vB
		c.memOff = rtl.SignExtend(b, iw[0:12], W)
		restore()

		// Branch unit: slot 0 only, resolved in decode with static
		// predict-not-taken (paper Section 4.2).
		if s == 0 {
			restore = b.Scope(netlist.StageDecode, "decode/branch")
			z := rtl.IsZero(b, raVal)
			takeEq := b.And(line(isa.BEQZ), z)
			takeNe := b.And(line(isa.BNEZ), b.Not(z))
			brTaken = b.And(fdValid, b.OrTree([]int{takeEq, takeNe, line(isa.GOTO)}))
			off := rtl.SignExtend(b, iw[0:16], PCB)
			brTarget, _ = rtl.RippleAdder(b, fdPC, off, b.Const(false))
			restore()
		}
	}

	// Close the fetch loop: next PC and wrong-path kill.
	restore = b.Scope(netlist.StageFetch, "fetch")
	pcNext := b.MuxWord(pcPlus1, brTarget, brTaken)
	bindPC(pcNext)
	bindFDValid(b.Not(brTaken))
	restore()

	// ------------------------------------------------------------
	// D/E pipeline register.
	// ------------------------------------------------------------
	restore = b.Scope(netlist.StageDecode, "piperegs/de")
	deValid := b.DFF(fdValid)
	de := make([]slotCtl, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		c, r := &ctls[s], &de[s]
		r.valA = b.DFFWord(c.valA)
		r.valB = b.DFFWord(c.valB)
		r.memOff = b.DFFWord(c.memOff)
		r.ra = b.DFFWord(c.ra)
		r.rb = b.DFFWord(c.rb)
		r.rd = b.DFFWord(c.rd)
		bits := []*int{
			&r.writesReg, &r.readsRb, &r.selAddSub, &r.selAnd, &r.selOr,
			&r.selXor, &r.selShift, &r.shRight, &r.shArith, &r.selCmp,
			&r.cmpEq, &r.cmpLt, &r.cmpLtu, &r.selMult, &r.aluSub,
			&r.isLoad, &r.isStore,
		}
		src := []*int{
			&c.writesReg, &c.readsRb, &c.selAddSub, &c.selAnd, &c.selOr,
			&c.selXor, &c.selShift, &c.shRight, &c.shArith, &c.selCmp,
			&c.cmpEq, &c.cmpLt, &c.cmpLtu, &c.selMult, &c.aluSub,
			&c.isLoad, &c.isStore,
		}
		for i := range bits {
			*bits[i] = b.DFF(*src[i])
		}
	}
	restore()

	// ------------------------------------------------------------
	// E/W pipeline register (created first on placeholders so the
	// execute-stage forwarding unit can read it).
	// ------------------------------------------------------------
	restore = b.Scope(netlist.StageExecute, "piperegs/ew")
	type ewRegs struct {
		result, addr, stData netlist.Word
		rd                   netlist.Word
		writes               int
		isLoad, isStore      int
	}
	ew := make([]ewRegs, cfg.Slots)
	binds := make([]func(result, addr, stData netlist.Word, writes, isLoad, isStore int), cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		var bindRes, bindAddr, bindSt func(netlist.Word)
		var bindW, bindL, bindS func(int)
		ew[s].result, bindRes = g.lateWord(W)
		ew[s].addr, bindAddr = g.lateWord(W)
		ew[s].stData, bindSt = g.lateWord(W)
		ew[s].writes, bindW = g.lateBit()
		ew[s].isLoad, bindL = g.lateBit()
		ew[s].isStore, bindS = g.lateBit()
		binds[s] = func(result, addr, stData netlist.Word, writes, isLoad, isStore int) {
			bindRes(result)
			bindAddr(addr)
			bindSt(stData)
			bindW(writes)
			bindL(isLoad)
			bindS(isStore)
		}
		// rd can be bound immediately: its source is a D/E output.
		ew[s].rd = b.DFFWord(de[s].rd)
	}
	restore()

	// ------------------------------------------------------------
	// Write-back stage: load/result selection, register write,
	// memory interface.
	// ------------------------------------------------------------
	core.LoadData = make([]netlist.Word, cfg.Slots)
	core.AddrOut = make([]netlist.Word, cfg.Slots)
	core.StDataOut = make([]netlist.Word, cfg.Slots)
	core.StEnOut = make([]int, cfg.Slots)
	core.LdEnOut = make([]int, cfg.Slots)
	wbData := make([]netlist.Word, cfg.Slots)
	restore = b.Scope(netlist.StageWriteback, "writeback")
	for s := 0; s < cfg.Slots; s++ {
		core.LoadData[s] = b.InputWord(fmt.Sprintf("loaddata%d", s), W)
		wbData[s] = b.MuxWord(ew[s].result, core.LoadData[s], ew[s].isLoad)
		core.AddrOut[s] = ew[s].addr
		core.StDataOut[s] = ew[s].stData
		core.StEnOut[s] = ew[s].isStore
		core.LdEnOut[s] = ew[s].isLoad
		b.OutputWord(ew[s].addr)
		b.OutputWord(ew[s].stData)
		b.Output(ew[s].isStore)
		b.Output(ew[s].isLoad)
	}
	restore()

	// Resolve the write-back placeholders.
	for s := 0; s < cfg.Slots; s++ {
		for i := 0; i < RB; i++ {
			b.NL.ReplaceNetSinks(wbAddrPH[s][i], ew[s].rd[i])
		}
		for i := 0; i < W; i++ {
			b.NL.ReplaceNetSinks(wbDataPH[s][i], wbData[s][i])
		}
		b.NL.ReplaceNetSinks(wbEnPH[s], ew[s].writes)
	}

	// ------------------------------------------------------------
	// Execute stage.
	// ------------------------------------------------------------
	for s := 0; s < cfg.Slots; s++ {
		r := &de[s]

		// Forwarding unit A: operand forwarding from the EX/WB
		// pipeline register (the paper's first forwarding unit, on
		// the critical path together with the ALU).
		restore = b.Scope(netlist.StageExecute, "execute/fwd")
		valA := r.valA
		valB := r.valB
		for p := 0; p < cfg.Slots; p++ {
			matchA := b.And(rtl.Equal(b, r.ra, ew[p].rd), ew[p].writes)
			valA = b.MuxWord(valA, wbData[p], matchA)
			matchB := b.And(b.And(rtl.Equal(b, r.rb, ew[p].rd), ew[p].writes), r.readsRb)
			valB = b.MuxWord(valB, wbData[p], matchB)
		}
		restore()

		unit := func(sub string) func() {
			return b.Scope(netlist.StageExecute, fmt.Sprintf("execute/slot%d/%s", s, sub))
		}

		// ALU with the shifter in series (paper: "an ALU, with a
		// shifter in series to it for shift and accumulate
		// instructions").
		restore = unit("alu")
		notShift := b.Not(r.selShift)
		bGate := make(netlist.Word, W)
		for i := 0; i < W; i++ {
			bGate[i] = b.And(valB[i], notShift)
		}
		aluOut, cout := rtl.AddSub(b, valA, bGate, r.aluSub)
		restore()

		restore = unit("shift")
		fill := b.And(r.shArith, rtl.MSB(aluOut))
		shifted := rtl.ShifterDyn(b, aluOut, valB[:cfg.AmtBits()], r.shRight, fill)
		restore()

		// Compare unit on ALU-result flags (paper: "a compare unit
		// checking MSB bits of ALU results").
		restore = unit("cmp")
		eq := rtl.IsZero(b, aluOut)
		ltu := b.Not(cout)
		n := rtl.MSB(aluOut)
		xs, ys := rtl.MSB(valA), rtl.MSB(bGate)
		lt := b.Xor(n, b.And(b.Xor(xs, ys), b.Xor(n, xs)))
		cmpBit := b.OrTree([]int{
			b.And(r.cmpEq, eq), b.And(r.cmpLt, lt), b.And(r.cmpLtu, ltu),
		})
		cmpW := rtl.ZeroExtend(b, netlist.Word{cmpBit}, W)
		restore()

		// Address-computation unit for loads and stores.
		restore = unit("addr")
		addr, _ := rtl.RippleAdder(b, valA, r.memOff, b.Const(false))
		restore()

		// Multiplier in parallel with the other units, with operand
		// isolation: the array only sees non-zero operands on actual
		// multiply operations, so idle slots do not toggle it (a
		// standard low-power measure; without it the multiplier
		// array dominates dynamic power).
		restore = unit("mult")
		half := W / 2
		multA := make(netlist.Word, half)
		multB := make(netlist.Word, half)
		for i := 0; i < half; i++ {
			multA[i] = b.And(valA[i], r.selMult)
			multB[i] = b.And(valB[i], r.selMult)
		}
		prod := rtl.ArrayMultiplier(b, multA, multB)
		restore()

		// Result selection.
		restore = unit("res")
		andW := b.AndWord(valA, valB)
		orW := b.OrWord(valA, valB)
		xorW := b.XorWord(valA, valB)
		result := rtl.OneHotMux(b,
			[]int{r.selAddSub, r.selAnd, r.selOr, r.selXor, r.selShift, r.selCmp, r.selMult},
			[]netlist.Word{aluOut, andW, orW, xorW, shifted, cmpW, prod})
		writes := b.And(r.writesReg, deValid)
		isLoad := b.And(r.isLoad, deValid)
		isStore := b.And(r.isStore, deValid)
		restore()

		// Store data is the forwarded operand B (a store's value
		// operand obeys the same forwarding rules as an ALU source).
		binds[s](result, addr, valB, writes, isLoad, isStore)
	}

	return core
}

// bypass emits one read-port bypass network: the raw register-file
// read value is overridden by any write-back slot writing the same
// register this cycle (later slots take priority, matching the
// register file's write-conflict rule).
func (g *gen) bypass(raw netlist.Word, reg netlist.Word, wbAddr []netlist.Word, wbData []netlist.Word, wbEn []int) netlist.Word {
	b := g.b
	v := raw
	for p := range wbAddr {
		match := b.And(rtl.Equal(b, reg, wbAddr[p]), wbEn[p])
		v = b.MuxWord(v, wbData[p], match)
	}
	return v
}
