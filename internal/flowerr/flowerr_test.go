package flowerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestClassifiedMatchesSentinelAndWrapped(t *testing.T) {
	inner := errors.New("inner cause")
	err := BadInputf("sdf: broken thing: %w", inner)
	if !errors.Is(err, ErrBadInput) {
		t.Error("BadInputf does not match ErrBadInput")
	}
	if !errors.Is(err, inner) {
		t.Error("BadInputf loses the wrapped cause")
	}
	if errors.Is(err, ErrStepOrder) {
		t.Error("BadInputf matches an unrelated class")
	}
	if want := "sdf: broken thing: inner cause"; err.Error() != want {
		t.Errorf("message = %q, want %q", err.Error(), want)
	}
}

func TestEveryConstructorMatchesItsClass(t *testing.T) {
	cases := []struct {
		err  error
		kind error
	}{
		{BadInputf("x"), ErrBadInput},
		{StepOrderf("x"), ErrStepOrder},
		{Cancelledf("x"), ErrCancelled},
		{NoScenariof("x"), ErrNoScenario},
		{PartialStepf("x"), ErrPartialStep},
		{DRCf("x"), ErrDRC},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.kind) {
			t.Errorf("%v does not match %v", c.err, c.kind)
		}
	}
}

func TestClassify(t *testing.T) {
	if Classify(ErrBadInput, nil) != nil {
		t.Error("Classify(nil) != nil")
	}
	already := BadInputf("x")
	if Classify(ErrBadInput, already) != already {
		t.Error("Classify re-wraps an already classified error")
	}
	wrapped := Classify(ErrCancelled, context.Canceled)
	if !errors.Is(wrapped, ErrCancelled) || !errors.Is(wrapped, context.Canceled) {
		t.Error("Classify loses a class or the cause")
	}
}

func TestPanicError(t *testing.T) {
	pe := &PanicError{Sample: 7, Value: "boom", Stack: []byte("stack")}
	var err error = fmt.Errorf("mc: %w", pe)
	if !errors.Is(err, ErrWorkerPanic) {
		t.Error("PanicError does not match ErrWorkerPanic")
	}
	var got *PanicError
	if !errors.As(err, &got) || got.Sample != 7 {
		t.Errorf("errors.As lost the panic detail: %+v", got)
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{nil, ExitOK},
		{errors.New("plain"), ExitFailure},
		{BadInputf("x"), ExitBadInput},
		{StepOrderf("x"), ExitStepOrder},
		{Cancelledf("x"), ExitCancelled},
		{fmt.Errorf("mc: %w", &PanicError{Sample: 1}), ExitWorkerPanic},
		{NoScenariof("x"), ExitNoScenario},
		{PartialStepf("x"), ExitPartialStep},
		{DRCf("x"), ExitDRC},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.code {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.code)
		}
	}
}
