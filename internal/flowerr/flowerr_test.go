package flowerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestClassifiedMatchesSentinelAndWrapped(t *testing.T) {
	inner := errors.New("inner cause")
	err := BadInputf("sdf: broken thing: %w", inner)
	if !errors.Is(err, ErrBadInput) {
		t.Error("BadInputf does not match ErrBadInput")
	}
	if !errors.Is(err, inner) {
		t.Error("BadInputf loses the wrapped cause")
	}
	if errors.Is(err, ErrStepOrder) {
		t.Error("BadInputf matches an unrelated class")
	}
	if want := "sdf: broken thing: inner cause"; err.Error() != want {
		t.Errorf("message = %q, want %q", err.Error(), want)
	}
}

func TestEveryConstructorMatchesItsClass(t *testing.T) {
	cases := []struct {
		err  error
		kind error
	}{
		{BadInputf("x"), ErrBadInput},
		{StepOrderf("x"), ErrStepOrder},
		{Cancelledf("x"), ErrCancelled},
		{NoScenariof("x"), ErrNoScenario},
		{PartialStepf("x"), ErrPartialStep},
		{DRCf("x"), ErrDRC},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.kind) {
			t.Errorf("%v does not match %v", c.err, c.kind)
		}
	}
}

func TestClassify(t *testing.T) {
	if Classify(ErrBadInput, nil) != nil {
		t.Error("Classify(nil) != nil")
	}
	already := BadInputf("x")
	if Classify(ErrBadInput, already) != already {
		t.Error("Classify re-wraps an already classified error")
	}
	wrapped := Classify(ErrCancelled, context.Canceled)
	if !errors.Is(wrapped, ErrCancelled) || !errors.Is(wrapped, context.Canceled) {
		t.Error("Classify loses a class or the cause")
	}
}

func TestPanicError(t *testing.T) {
	pe := &PanicError{Sample: 7, Value: "boom", Stack: []byte("stack")}
	var err error = fmt.Errorf("mc: %w", pe)
	if !errors.Is(err, ErrWorkerPanic) {
		t.Error("PanicError does not match ErrWorkerPanic")
	}
	var got *PanicError
	if !errors.As(err, &got) || got.Sample != 7 {
		t.Errorf("errors.As lost the panic detail: %+v", got)
	}
}

// sentinels is the full taxonomy; the mapping tests below fail when a
// newly added sentinel is missing from either table.
var sentinels = []error{
	ErrBadInput, ErrStepOrder, ErrCancelled, ErrWorkerPanic,
	ErrNoScenario, ErrPartialStep, ErrDRC,
}

func TestExitCodeMapsEverySentinel(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{nil, ExitOK},
		{errors.New("plain"), ExitFailure},
		{fmt.Errorf("deep: %w", errors.New("plain")), ExitFailure},
		{ErrBadInput, ExitBadInput},
		{ErrStepOrder, ExitStepOrder},
		{ErrCancelled, ExitCancelled},
		{ErrWorkerPanic, ExitWorkerPanic},
		{ErrNoScenario, ExitNoScenario},
		{ErrPartialStep, ExitPartialStep},
		{ErrDRC, ExitDRC},
	}
	covered := make(map[error]bool)
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.code {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.code)
		}
		covered[c.err] = true
	}
	for _, s := range sentinels {
		if !covered[s] {
			t.Errorf("sentinel %v has no exit-code table entry", s)
		}
		if ExitCode(s) == ExitFailure || ExitCode(s) == ExitOK {
			t.Errorf("sentinel %v falls through to the generic exit code", s)
		}
	}
}

func TestHTTPStatusMapsEverySentinel(t *testing.T) {
	cases := []struct {
		err    error
		status int
	}{
		{nil, 200},
		{errors.New("plain"), 500},
		{fmt.Errorf("deep: %w", errors.New("plain")), 500},
		{ErrBadInput, 400},
		{ErrStepOrder, 409},
		{ErrCancelled, StatusClientClosedRequest},
		{ErrWorkerPanic, 500},
		{ErrNoScenario, 422},
		{ErrPartialStep, 500},
		{ErrDRC, 422},
		// Constructors and wrapping preserve the class mapping.
		{BadInputf("x"), 400},
		{fmt.Errorf("outer: %w", Cancelledf("x")), StatusClientClosedRequest},
		{fmt.Errorf("mc: %w", &PanicError{Sample: 1}), 500},
	}
	covered := make(map[error]bool)
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.status {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.status)
		}
		covered[c.err] = true
	}
	for _, s := range sentinels {
		if !covered[s] {
			t.Errorf("sentinel %v has no HTTP-status table entry", s)
		}
		if got := HTTPStatus(s); got < 400 || got > 599 {
			t.Errorf("HTTPStatus(%v) = %d, not an error status", s, got)
		}
	}
}

func TestClassNames(t *testing.T) {
	want := map[error]string{
		ErrBadInput:    "bad-input",
		ErrStepOrder:   "step-order",
		ErrCancelled:   "cancelled",
		ErrWorkerPanic: "worker-panic",
		ErrNoScenario:  "no-scenario",
		ErrPartialStep: "partial-step",
		ErrDRC:         "drc",
	}
	for _, s := range sentinels {
		name, ok := want[s]
		if !ok {
			t.Fatalf("sentinel %v missing from class-name table", s)
		}
		if got := Class(fmt.Errorf("wrapped: %w", s)); got != name {
			t.Errorf("Class(%v) = %q, want %q", s, got, name)
		}
	}
	if got := Class(nil); got != "" {
		t.Errorf("Class(nil) = %q, want empty", got)
	}
	if got := Class(errors.New("plain")); got != "unclassified" {
		t.Errorf("Class(plain) = %q", got)
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{nil, ExitOK},
		{errors.New("plain"), ExitFailure},
		{BadInputf("x"), ExitBadInput},
		{StepOrderf("x"), ExitStepOrder},
		{Cancelledf("x"), ExitCancelled},
		{fmt.Errorf("mc: %w", &PanicError{Sample: 1}), ExitWorkerPanic},
		{NoScenariof("x"), ExitNoScenario},
		{PartialStepf("x"), ExitPartialStep},
		{DRCf("x"), ExitDRC},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.code {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.code)
		}
	}
}
