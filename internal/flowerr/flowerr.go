// Package flowerr defines the typed error taxonomy of the flow
// runtime. Every package in the flow classifies its failures against
// the sentinel errors below so that callers — the vipipe.Flow facade,
// the cmd/ tools, and service frontends — can branch on failure class
// with errors.Is/errors.As instead of string matching, and map each
// class to a stable process exit code.
//
// The taxonomy:
//
//   - ErrBadInput: a caller-supplied artifact (SDF/DEF text, netlist,
//     placement, option vector) is malformed or inconsistent.
//   - ErrStepOrder: a flow step ran before its prerequisites.
//   - ErrCancelled: a context was cancelled or its deadline expired;
//     partial results may accompany the error.
//   - ErrWorkerPanic: a worker goroutine panicked; the panic was
//     recovered and converted into a PanicError.
//   - ErrNoScenario: characterization found no violation scenario, so
//     there is nothing for voltage islands to compensate.
//   - ErrPartialStep: a step failed midway and left the flow state
//     only partially updated; downstream results are suspect until the
//     step is redone from a fresh flow.
//   - ErrDRC: a design-rule check found violations.
package flowerr

import (
	"errors"
	"fmt"
	"net/http"
)

// Sentinel failure classes. Match with errors.Is.
var (
	ErrBadInput    = errors.New("bad input")
	ErrStepOrder   = errors.New("flow step out of order")
	ErrCancelled   = errors.New("cancelled")
	ErrWorkerPanic = errors.New("worker panic")
	ErrNoScenario  = errors.New("no violation scenario")
	ErrPartialStep = errors.New("partial step failure")
	ErrDRC         = errors.New("design rule violation")
)

// classified attaches a failure class to a formatted error while
// preserving any error wrapped by the message itself (both unwrap).
type classified struct {
	kind error // one of the sentinels above
	err  error
}

func (e *classified) Error() string   { return e.err.Error() }
func (e *classified) Unwrap() []error { return []error{e.kind, e.err} }

// Classify wraps err with a failure class. It returns nil when err is
// nil and err unchanged when it already matches kind.
func Classify(kind, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, kind) {
		return err
	}
	return &classified{kind: kind, err: err}
}

func wrapf(kind error, format string, args ...any) error {
	return &classified{kind: kind, err: fmt.Errorf(format, args...)}
}

// BadInputf formats an ErrBadInput-classified error.
func BadInputf(format string, args ...any) error { return wrapf(ErrBadInput, format, args...) }

// StepOrderf formats an ErrStepOrder-classified error.
func StepOrderf(format string, args ...any) error { return wrapf(ErrStepOrder, format, args...) }

// Cancelledf formats an ErrCancelled-classified error.
func Cancelledf(format string, args ...any) error { return wrapf(ErrCancelled, format, args...) }

// NoScenariof formats an ErrNoScenario-classified error.
func NoScenariof(format string, args ...any) error { return wrapf(ErrNoScenario, format, args...) }

// PartialStepf formats an ErrPartialStep-classified error.
func PartialStepf(format string, args ...any) error { return wrapf(ErrPartialStep, format, args...) }

// DRCf formats an ErrDRC-classified error.
func DRCf(format string, args ...any) error { return wrapf(ErrDRC, format, args...) }

// PanicError records one recovered worker panic: which sample the
// worker was processing, the recovered value, and the goroutine stack
// at the panic site. It matches ErrWorkerPanic under errors.Is.
type PanicError struct {
	Sample int    // sample index the worker was computing
	Value  any    // value passed to panic()
	Stack  []byte // debug.Stack() captured inside the recover
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("worker panic on sample %d: %v", e.Sample, e.Value)
}

// Is reports that a PanicError belongs to the ErrWorkerPanic class.
func (e *PanicError) Is(target error) bool { return target == ErrWorkerPanic }

// Exit codes per failure class, for the cmd/ tools.
const (
	ExitOK          = 0
	ExitFailure     = 1 // unclassified
	ExitBadInput    = 2
	ExitStepOrder   = 3
	ExitCancelled   = 4
	ExitWorkerPanic = 5
	ExitNoScenario  = 6
	ExitPartialStep = 7
	ExitDRC         = 8
)

// ExitCode maps an error to the process exit code of its failure
// class. nil maps to 0; an unclassified error to 1.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrBadInput):
		return ExitBadInput
	case errors.Is(err, ErrStepOrder):
		return ExitStepOrder
	case errors.Is(err, ErrCancelled):
		return ExitCancelled
	case errors.Is(err, ErrWorkerPanic):
		return ExitWorkerPanic
	case errors.Is(err, ErrNoScenario):
		return ExitNoScenario
	case errors.Is(err, ErrPartialStep):
		return ExitPartialStep
	case errors.Is(err, ErrDRC):
		return ExitDRC
	default:
		return ExitFailure
	}
}

// StatusClientClosedRequest is the nginx-convention status for a
// request abandoned by the client; the service uses it for cancelled
// jobs since no standard code distinguishes "you asked us to stop"
// from a server fault.
const StatusClientClosedRequest = 499

// HTTPStatus maps an error to the stable HTTP status code of its
// failure class, for service frontends. nil maps to 200 OK; an
// unclassified error to 500.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBadInput):
		return http.StatusBadRequest // 400
	case errors.Is(err, ErrStepOrder):
		return http.StatusConflict // 409
	case errors.Is(err, ErrCancelled):
		return StatusClientClosedRequest // 499
	case errors.Is(err, ErrNoScenario):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, ErrDRC):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, ErrWorkerPanic):
		return http.StatusInternalServerError // 500
	case errors.Is(err, ErrPartialStep):
		return http.StatusInternalServerError // 500
	default:
		return http.StatusInternalServerError
	}
}

// Class returns the short stable name of an error's failure class
// ("bad-input", "cancelled", ...), "" for nil and "unclassified" for
// an error outside the taxonomy. Service responses carry it so clients
// can branch without parsing messages.
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBadInput):
		return "bad-input"
	case errors.Is(err, ErrStepOrder):
		return "step-order"
	case errors.Is(err, ErrCancelled):
		return "cancelled"
	case errors.Is(err, ErrWorkerPanic):
		return "worker-panic"
	case errors.Is(err, ErrNoScenario):
		return "no-scenario"
	case errors.Is(err, ErrPartialStep):
		return "partial-step"
	case errors.Is(err, ErrDRC):
		return "drc"
	default:
		return "unclassified"
	}
}
