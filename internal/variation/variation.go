// Package variation implements the paper's 65nm process-variation
// model (Section 4.1):
//
//   - Effective gate length Lgate is split into an across-field
//     systematic component f(x,y) — a second-order polynomial of the
//     position on the exposure field (Eq. 1), after Cain's measured
//     130nm photolithography data, scaled so the maximum systematic
//     deviation is +/-5.5% — and a random component epsilon drawn from
//     a normal distribution with 3*sigma/mu = 6.5% (Eq. 2), for a
//     total Lgate control of 3*sigma/mu ~ 9% (ITRS).
//   - A chip in the lower-left of the gradient (point A) is slowest;
//     along the diagonal toward the upper right the systematic
//     component fades and then helps (points B, C, D).
//   - Wire variation is ignored, as in the paper's reference models.
package variation

import (
	"fmt"
	"math"

	"vipipe/internal/cell"
	"vipipe/internal/place"
	"vipipe/internal/stats"
)

// Model is the calibrated Lgate variation model.
type Model struct {
	FieldMM float64 // exposure-field edge (28mm in the paper)
	ChipMM  float64 // chip edge (14mm in the paper)

	LnomNM  float64 // nominal effective gate length
	SysFrac float64 // max systematic deviation as a fraction (0.055)
	RndFrac float64 // 3*sigma/mu of the random component (0.065)

	// Second-order polynomial coefficients over normalized chip
	// coordinates p, q in [0,1]:
	//
	//	g(p,q) = A p^2 + B q^2 + C p + D q + E pq + K
	//
	// normalized at construction so g spans exactly [-1, +1] over
	// the chip; Lgate(p,q) = Lnom * (1 + SysFrac * g(p,q)).
	A, B, C, D, E, K float64
}

// Default returns the model with the paper's constants: 65nm nominal
// Lgate, 5.5% systematic range, 6.5% random 3-sigma, a 28mm exposure
// field and a 14mm chip, and a polynomial whose gradient runs along
// the chip diagonal (Fig. 2: slowest in the lower-left corner).
func Default() Model {
	m := Model{
		FieldMM: 28,
		ChipMM:  14,
		LnomNM:  65,
		SysFrac: 0.055,
		RndFrac: 0.065,
		// Raw shape: dominated by a negative diagonal gradient with
		// mild curvature and an xy cross term, qualitatively
		// matching the measured maps in Cain's data and Fig. 2.
		A: 0.15, B: 0.12, C: -1.10, D: -1.05, E: 0.18, K: 0,
	}
	m.normalize()
	return m
}

// normalize affinely rescales the polynomial so that it spans exactly
// [-1, +1] over the chip area, fulfilling the paper's "maximum
// systematic Lgate deviations by +/-5.5%".
func (m *Model) normalize() {
	const n = 140
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			v := m.rawPoly(float64(i)/n, float64(j)/n)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	span := hi - lo
	if span == 0 {
		m.A, m.B, m.C, m.D, m.E, m.K = 0, 0, 0, 0, 0, 0
		return
	}
	// g' = 2*(g-lo)/span - 1: affine, stays second order.
	s := 2 / span
	m.A *= s
	m.B *= s
	m.C *= s
	m.D *= s
	m.E *= s
	m.K = m.K*s - lo*s - 1
}

func (m *Model) rawPoly(p, q float64) float64 {
	return m.A*p*p + m.B*q*q + m.C*p + m.D*q + m.E*p*q + m.K
}

// SystematicFrac returns the systematic Lgate deviation fraction at
// chip coordinates (xMM, yMM) in millimeters; (0,0) is the lower-left
// chip corner.
func (m *Model) SystematicFrac(xMM, yMM float64) float64 {
	p := clamp01(xMM / m.ChipMM)
	q := clamp01(yMM / m.ChipMM)
	return m.SysFrac * m.rawPoly(p, q)
}

// SystematicLgateNM returns the systematic component of Lgate at chip
// coordinates, paper Eq. 1.
func (m *Model) SystematicLgateNM(xMM, yMM float64) float64 {
	return m.LnomNM * (1 + m.SystematicFrac(xMM, yMM))
}

// RndSigmaNM returns the standard deviation of the random component.
func (m *Model) RndSigmaNM() float64 { return m.LnomNM * m.RndFrac / 3 }

// MapGrid samples the systematic deviation fraction on an n-by-n grid
// over the chip: the data behind Fig. 2. Row index is y (row 0 at the
// chip bottom), column index is x.
func (m *Model) MapGrid(n int) [][]float64 {
	if n < 2 {
		panic(fmt.Sprintf("variation: map grid %d too small", n))
	}
	g := make([][]float64, n)
	for j := range g {
		g[j] = make([]float64, n)
		y := float64(j) / float64(n-1) * m.ChipMM
		for i := range g[j] {
			x := float64(i) / float64(n-1) * m.ChipMM
			g[j][i] = m.SystematicFrac(x, y)
		}
	}
	return g
}

// Pos is a core placement position on the chip, in millimeters.
type Pos struct {
	Name string
	XMM  float64
	YMM  float64
}

// DiagonalPositions returns the paper's four core placements along the
// chip diagonal: A in the lower-left (worst-case systematic
// variation), then B, C, D toward the upper-right where nominal
// performance is guaranteed (Section 4.4).
func (m *Model) DiagonalPositions() []Pos {
	d := m.ChipMM
	return []Pos{
		{Name: "A", XMM: 0, YMM: 0},
		{Name: "B", XMM: 0.41 * d, YMM: 0.41 * d},
		{Name: "C", XMM: 0.55 * d, YMM: 0.55 * d},
		{Name: "D", XMM: 0.80 * d, YMM: 0.80 * d},
	}
}

// Position returns the diagonal position with the given name, and
// whether the model defines it.
func (m *Model) Position(name string) (Pos, bool) {
	for _, p := range m.DiagonalPositions() {
		if p.Name == name {
			return p, true
		}
	}
	return Pos{}, false
}

// SampleChip draws one fabricated-chip instance: per-cell effective
// gate lengths for a core placed with its lower-left corner at pos,
// combining the systematic map at each cell's physical location with
// an independent random draw (paper Eq. 2).
func (m *Model) SampleChip(pl *place.Placement, pos Pos, rng *stats.Stream) []float64 {
	lg := make([]float64, pl.NL.NumCells())
	m.SampleChipInto(lg, pl, pos, rng)
	return lg
}

// SampleChipInto is SampleChip with caller-owned storage for Monte
// Carlo inner loops: the draw order and arithmetic are identical, so
// a reused buffer holds the same bits a fresh SampleChip would.
// lg must have NumCells entries.
func (m *Model) SampleChipInto(lg []float64, pl *place.Placement, pos Pos, rng *stats.Stream) {
	n := pl.NL.NumCells()
	sigma := m.RndSigmaNM()
	for i := 0; i < n; i++ {
		cx, cy := pl.Center(i)
		x := pos.XMM + cx/1000 // placement is in microns
		y := pos.YMM + cy/1000
		lg[i] = m.SystematicLgateNM(x, y) + rng.Normal(0, sigma)
	}
}

// DelayScales converts per-cell gate lengths and supply domains into
// the per-instance delay factors consumed by the timing engine
// (paper Eq. 3 via cell.Tech).
func DelayScales(tech *cell.Tech, lgateNM []float64, domains []cell.Domain) []float64 {
	out := make([]float64, len(lgateNM))
	for i, lg := range lgateNM {
		vdd := tech.VddLow
		if domains != nil && domains[i] == cell.DomainHigh {
			vdd = tech.VddHigh
		}
		out[i] = tech.DelayScale(vdd, lg)
	}
	return out
}

// LeakScales converts per-cell gate lengths and domains into leakage
// multipliers relative to nominal (paper Eq. 4 through cell.Tech).
func LeakScales(tech *cell.Tech, lgateNM []float64, domains []cell.Domain) []float64 {
	out := make([]float64, len(lgateNM))
	for i, lg := range lgateNM {
		vdd := tech.VddLow
		if domains != nil && domains[i] == cell.DomainHigh {
			vdd = tech.VddHigh
		}
		out[i] = tech.LeakScale(vdd, lg)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
