package variation

import (
	"math"
	"testing"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/stats"
)

func TestSystematicRangeIsCalibrated(t *testing.T) {
	m := Default()
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i <= 100; i++ {
		for j := 0; j <= 100; j++ {
			f := m.SystematicFrac(float64(i)/100*m.ChipMM, float64(j)/100*m.ChipMM)
			lo = math.Min(lo, f)
			hi = math.Max(hi, f)
		}
	}
	// Paper: maximum systematic deviations of +/-5.5%.
	if math.Abs(hi-0.055) > 0.002 {
		t.Errorf("max systematic %g, want ~+0.055", hi)
	}
	if math.Abs(lo+0.055) > 0.002 {
		t.Errorf("min systematic %g, want ~-0.055", lo)
	}
}

func TestCornerOrdering(t *testing.T) {
	m := Default()
	// Lower-left (A) must be the slow corner (longest Lgate), the
	// upper-right the fastest (Fig. 2).
	a := m.SystematicFrac(0, 0)
	d := m.SystematicFrac(m.ChipMM, m.ChipMM)
	if a <= 0 {
		t.Errorf("corner A deviation %g should be positive (slow)", a)
	}
	if d >= 0 {
		t.Errorf("upper-right deviation %g should be negative (fast)", d)
	}
	// Monotone decrease along the diagonal.
	prev := math.Inf(1)
	for i := 0; i <= 10; i++ {
		v := m.SystematicFrac(float64(i)/10*m.ChipMM, float64(i)/10*m.ChipMM)
		if v >= prev {
			t.Fatalf("diagonal not monotone at step %d: %g >= %g", i, v, prev)
		}
		prev = v
	}
}

func TestSystematicLgateNM(t *testing.T) {
	m := Default()
	if got := m.SystematicLgateNM(0, 0); math.Abs(got-65*1.055) > 0.2 {
		t.Errorf("Lgate at A = %g, want ~%g", got, 65*1.055)
	}
	// Out-of-chip coordinates clamp.
	if m.SystematicLgateNM(-5, -5) != m.SystematicLgateNM(0, 0) {
		t.Error("coordinates should clamp to the chip")
	}
}

func TestRndSigma(t *testing.T) {
	m := Default()
	if math.Abs(m.RndSigmaNM()-65*0.065/3) > 1e-12 {
		t.Errorf("random sigma = %g", m.RndSigmaNM())
	}
}

func TestMapGridShapeAndRange(t *testing.T) {
	m := Default()
	g := m.MapGrid(50)
	if len(g) != 50 || len(g[0]) != 50 {
		t.Fatal("grid shape wrong")
	}
	// Bottom-left corner of the grid is the slow corner.
	if g[0][0] <= g[49][49] {
		t.Error("grid orientation wrong")
	}
}

func TestDiagonalPositionsOrdered(t *testing.T) {
	m := Default()
	ps := m.DiagonalPositions()
	if len(ps) != 4 || ps[0].Name != "A" || ps[3].Name != "D" {
		t.Fatalf("positions: %+v", ps)
	}
	prev := -1.0
	for _, p := range ps {
		if p.XMM <= prev || p.XMM != p.YMM {
			t.Errorf("position %s not on increasing diagonal", p.Name)
		}
		prev = p.XMM
	}
	// Severity must decrease from A to D.
	for i := 1; i < len(ps); i++ {
		if m.SystematicFrac(ps[i].XMM, ps[i].YMM) >= m.SystematicFrac(ps[i-1].XMM, ps[i-1].YMM) {
			t.Errorf("severity not decreasing at %s", ps[i].Name)
		}
	}
}

func testPlacement(t *testing.T) *place.Placement {
	t.Helper()
	b := netlist.NewBuilder("v", cell.Default65nm())
	x := b.Input("x")
	n := x
	for i := 0; i < 200; i++ {
		n = b.Not(n)
	}
	b.DFF(n)
	p, err := place.Global(b.NL, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSampleChipStatistics(t *testing.T) {
	m := Default()
	pl := testPlacement(t)
	rng := stats.NewStream(3)
	lg := m.SampleChip(pl, Pos{Name: "A"}, rng)
	if len(lg) != pl.NL.NumCells() {
		t.Fatal("sample size wrong")
	}
	s := stats.Summarize(lg)
	// At point A the core is tiny (~0.3mm) relative to the chip, so
	// all cells see roughly the corner systematic value +5.5%, plus
	// N(0, 1.41nm) randomness.
	if math.Abs(s.Mean-65*1.055) > 0.5 {
		t.Errorf("mean Lgate %g, want ~%g", s.Mean, 65*1.055)
	}
	if math.Abs(s.StdDev-m.RndSigmaNM()) > 0.35 {
		t.Errorf("stddev %g, want ~%g", s.StdDev, m.RndSigmaNM())
	}
}

func TestSampleChipPositionShift(t *testing.T) {
	m := Default()
	pl := testPlacement(t)
	lgA := m.SampleChip(pl, Pos{Name: "A"}, stats.NewStream(3))
	lgD := m.SampleChip(pl, Pos{Name: "D", XMM: 0.7 * m.ChipMM, YMM: 0.7 * m.ChipMM}, stats.NewStream(3))
	if stats.Mean(lgA) <= stats.Mean(lgD) {
		t.Error("point A should have longer (slower) gates than D")
	}
}

func TestSampleChipDeterminism(t *testing.T) {
	m := Default()
	pl := testPlacement(t)
	a := m.SampleChip(pl, Pos{}, stats.NewStream(7))
	b := m.SampleChip(pl, Pos{}, stats.NewStream(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestDelayAndLeakScales(t *testing.T) {
	tech := cell.DefaultTech()
	lg := []float64{65, 70, 60}
	doms := []cell.Domain{cell.DomainLow, cell.DomainLow, cell.DomainHigh}
	ds := DelayScales(&tech, lg, nil)
	if math.Abs(ds[0]-1) > 1e-12 {
		t.Errorf("nominal scale %g", ds[0])
	}
	if ds[1] <= 1 || ds[2] >= 1 {
		t.Errorf("scale direction wrong: %v", ds)
	}
	dsD := DelayScales(&tech, lg, doms)
	// High-Vdd domain cell must be faster than the same cell at low
	// Vdd.
	if dsD[2] >= ds[2] {
		t.Errorf("domain boost missing: %g vs %g", dsD[2], ds[2])
	}
	ls := LeakScales(&tech, lg, doms)
	if ls[1] >= 1 || ls[2] <= 1 {
		t.Errorf("leak scale direction wrong: %v", ls)
	}
}

func TestMapGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m := Default()
	m.MapGrid(1)
}
