// Package vipipe is a Go reproduction of "Process Variation Tolerant
// Pipeline Design Through a Placement-Aware Multiple Voltage Island
// Design Style" (Bonesi, Bertozzi, Benini, Macii — DATE 2008).
//
// It implements the paper's full methodology on top of from-scratch
// substrates: a synthetic dual-Vdd 65nm standard-cell library, a
// VEX-like 4-stage VLIW core emitted as a mapped gate-level netlist, a
// min-cut global placer, static and statistical (Monte Carlo) timing
// analysis with the paper's Lgate variation model, a gate-level
// switching-activity simulator driving a PrimePower-style power model,
// Razor-style violation-scenario detection, and the contribution
// itself: placement-aware nested voltage islands with level-shifter
// insertion (see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the reproduced tables and figures).
//
// The Flow type walks the methodology of the paper's Fig. 1:
//
//	flow := vipipe.New(vipipe.DefaultConfig())
//	flow.Synthesize()          // performance-optimized netlist
//	flow.Place()               // coarse placement
//	flow.Analyze()             // STA, clock selection, power recovery
//	flow.Characterize()        // Monte Carlo SSTA at chip positions A-D
//	part := flow.GenerateIslands(vi.Vertical)  // island generation
//	flow.InsertShifters(part)  // level shifters + incremental placement
//	flow.SimulateWorkload()    // FIR benchmark switching activity
//	rep := flow.ScenarioPower(part, 2, flow.Position("B"))
package vipipe

import (
	"fmt"

	"vipipe/internal/cell"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/place"
	"vipipe/internal/power"
	"vipipe/internal/razor"
	"vipipe/internal/sta"
	"vipipe/internal/variation"
	"vipipe/internal/vex"
	"vipipe/internal/vexsim"
	"vipipe/internal/vi"
)

// Config parameterizes the whole flow.
type Config struct {
	Core  vex.Config
	Place place.Options
	Model variation.Model

	// Recovery emulates post-synthesis power optimization (see
	// internal/sta): per-stage wall targets and the per-cell derate
	// cap.
	Recovery   sta.RecoveryTargets
	MaxDerate  float64
	ClockGuard float64 // clock = nominal critical path * (1 + guard)

	// Monte Carlo characterization.
	MCSamples int
	Seed      int64

	// FIR workload (paper: power measured on a FIR benchmark).
	FIRSamples int
	FIRTaps    int

	// Voltage-island generation.
	VISamples    int
	SensorBudget int
}

// DefaultConfig reproduces the paper's setup on the full-size core.
func DefaultConfig() Config {
	return Config{
		Core:         vex.DefaultConfig(),
		Place:        place.DefaultOptions(),
		Model:        variation.Default(),
		Recovery:     sta.DefaultRecoveryTargets(),
		MaxDerate:    12,
		ClockGuard:   0.001,
		MCSamples:    300,
		Seed:         1,
		FIRSamples:   48,
		FIRTaps:      8,
		VISamples:    60,
		SensorBudget: razor.DefaultBudget,
	}
}

// TestConfig is DefaultConfig on the reduced core with lighter Monte
// Carlo settings, for fast tests and examples.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Core = vex.SmallConfig()
	cfg.MCSamples = 120
	cfg.FIRSamples = 12
	cfg.FIRTaps = 4
	cfg.VISamples = 40
	return cfg
}

// Flow carries the state of one end-to-end run.
type Flow struct {
	Cfg Config
	Lib *cell.Library

	Core *vex.Core
	NL   *netlist.Netlist
	PL   *place.Placement
	STA  *sta.Analyzer

	ClockPS float64
	FmaxMHz float64
	Derate  []float64

	// Characterize results, keyed by position name (A..D).
	MC map[string]*mc.Result
	// ScenarioPositions orders the violating positions least to most
	// severe (C, B, A), as consumed by island generation.
	ScenarioPositions []variation.Pos

	FIR      *vexsim.FIR
	Activity []float64
}

// New prepares a flow; no work happens until the step methods run.
func New(cfg Config) *Flow {
	return &Flow{Cfg: cfg, Lib: cell.Default65nm()}
}

// Position returns the named chip position of the variation model.
func (f *Flow) Position(name string) variation.Pos {
	for _, p := range f.Cfg.Model.DiagonalPositions() {
		if p.Name == name {
			return p
		}
	}
	return variation.Pos{Name: name}
}

// Synthesize builds the performance-optimized gate-level core.
func (f *Flow) Synthesize() error {
	core, err := vex.Build(f.Cfg.Core, f.Lib)
	if err != nil {
		return err
	}
	f.Core = core
	f.NL = core.NL
	return nil
}

// Place runs global placement (the paper's physical-synthesis step).
func (f *Flow) Place() error {
	if f.NL == nil {
		return fmt.Errorf("vipipe: Place before Synthesize")
	}
	pl, err := place.Global(f.NL, f.Cfg.Place)
	if err != nil {
		return err
	}
	f.PL = pl
	return nil
}

// Analyze runs nominal STA, fixes the clock at the critical path plus
// guard, and applies slack recovery so every stage sits near its wall
// (the paper's performance-optimized starting point, Fig. 3 setup).
func (f *Flow) Analyze() error {
	if f.PL == nil {
		return fmt.Errorf("vipipe: Analyze before Place")
	}
	a, err := sta.New(f.NL, f.PL)
	if err != nil {
		return err
	}
	f.STA = a
	nominal := a.Run(1e12, nil)
	f.ClockPS = nominal.CritPS * (1 + f.Cfg.ClockGuard)
	f.FmaxMHz = sta.FmaxMHz(f.ClockPS)
	f.Derate = a.SlackRecovery(f.ClockPS, f.Cfg.Recovery, f.Cfg.MaxDerate, 25)
	return nil
}

// Characterize runs the Monte Carlo SSTA at every diagonal position
// and derives the scenario ladder (paper Sections 4.3-4.4).
func (f *Flow) Characterize() error {
	if f.STA == nil {
		return fmt.Errorf("vipipe: Characterize before Analyze")
	}
	f.MC = make(map[string]*mc.Result)
	type classified struct {
		pos variation.Pos
		sc  mc.Scenario
	}
	var ladder []classified
	for _, pos := range f.Cfg.Model.DiagonalPositions() {
		res, err := mc.Run(f.STA, &f.Cfg.Model, pos, mc.Options{
			Samples: f.Cfg.MCSamples,
			Seed:    f.Cfg.Seed,
			ClockPS: f.ClockPS,
			Derate:  f.Derate,
		})
		if err != nil {
			return err
		}
		f.MC[pos.Name] = res
		sc, _ := res.Classify(0)
		ladder = append(ladder, classified{pos, sc})
	}
	// Scenario positions: island k is sized to compensate the most
	// severe chip position that will be treated with only k islands,
	// i.e. the last position (walking from worst A to best D) whose
	// classification is still at least k. With the canonical ladder
	// A=3, B=2, C=1, D=0 this selects C, B, A.
	f.ScenarioPositions = nil
	for want := mc.Scenario(1); want <= 3; want++ {
		var chosen *variation.Pos
		for i := range ladder {
			if ladder[i].sc >= want {
				chosen = &ladder[i].pos
			}
		}
		if chosen != nil {
			f.ScenarioPositions = append(f.ScenarioPositions, *chosen)
		}
	}
	if len(f.ScenarioPositions) == 0 {
		return fmt.Errorf("vipipe: no violation scenarios found — nothing to compensate")
	}
	return nil
}

// SensorPlan derives the Razor sensor placement from the worst-case
// (point A) characterization.
func (f *Flow) SensorPlan() (*razor.Plan, error) {
	resA, ok := f.MC["A"]
	if !ok {
		return nil, fmt.Errorf("vipipe: SensorPlan before Characterize")
	}
	return razor.NewPlan(f.NL, resA, f.Cfg.SensorBudget), nil
}

// GenerateIslands runs the paper's placement-aware slicing for the
// characterized scenarios.
func (f *Flow) GenerateIslands(strategy vi.Strategy) (*vi.Partition, error) {
	if len(f.ScenarioPositions) == 0 {
		return nil, fmt.Errorf("vipipe: GenerateIslands before Characterize")
	}
	return vi.Generate(f.STA, &f.Cfg.Model, f.ScenarioPositions, vi.Options{
		Strategy: strategy,
		ClockPS:  f.ClockPS,
		Derate:   f.Derate,
		Samples:  f.Cfg.VISamples,
		Seed:     f.Cfg.Seed,
	})
}

// InsertShifters splices the partition's level shifters into the
// netlist, extends the placement and the derate vector, and refreshes
// the timing engine. It returns the shifter count and the critical-
// path degradation fraction (paper Section 4.6: 8% vertical, 15%
// horizontal).
func (f *Flow) InsertShifters(p *vi.Partition) (count int, degradation float64, err error) {
	before := f.STA.Run(f.ClockPS, f.Derate).CritPS
	count, err = p.InsertShifters(f.PL)
	if err != nil {
		return 0, 0, err
	}
	for len(f.Derate) < f.NL.NumCells() {
		f.Derate = append(f.Derate, 1)
	}
	if err := f.STA.Refresh(); err != nil {
		return count, 0, err
	}
	after := f.STA.Run(f.ClockPS, f.Derate).CritPS
	return count, after/before - 1, nil
}

// SimulateWorkload co-simulates the FIR benchmark on the gate-level
// netlist against behavioral memories and records switching activity.
// Run it after any netlist mutation (level shifters, Razor flops) so
// the activity covers the final design.
func (f *Flow) SimulateWorkload() error {
	if f.Core == nil {
		return fmt.Errorf("vipipe: SimulateWorkload before Synthesize")
	}
	fir, err := vexsim.NewFIR(f.Cfg.Core, f.Cfg.FIRSamples, f.Cfg.FIRTaps, f.Cfg.Seed)
	if err != nil {
		return err
	}
	tb, err := vexsim.NewTestbench(f.Core, fir.Prog, fir.DMem)
	if err != nil {
		return err
	}
	tb.Run(fir.Cycles)
	if idx := fir.CheckResults(tb.DMem); idx >= 0 {
		return fmt.Errorf("vipipe: FIR output wrong at %d — netlist broken", idx)
	}
	f.FIR = fir
	f.Activity = tb.Activity()
	return nil
}

// SystematicLgate returns per-cell gate lengths at a chip position
// with the random component suppressed: the "mean chip" used for
// scenario power reporting.
func (f *Flow) SystematicLgate(pos variation.Pos) []float64 {
	lg := make([]float64, f.NL.NumCells())
	for i := range lg {
		cx, cy := f.PL.Center(i)
		lg[i] = f.Cfg.Model.SystematicLgateNM(pos.XMM+cx/1000, pos.YMM+cy/1000)
	}
	return lg
}

// Power runs the power analysis under an explicit domain assignment
// and chip position (leakage scales with the position's systematic
// gate length).
func (f *Flow) Power(domains []cell.Domain, pos variation.Pos) (*power.Report, error) {
	if f.Activity == nil {
		return nil, fmt.Errorf("vipipe: Power before SimulateWorkload")
	}
	return power.Analyze(power.Inputs{
		NL:       f.NL,
		PL:       f.PL,
		Activity: f.Activity,
		FreqMHz:  f.FmaxMHz,
		Domains:  domains,
		LgateNM:  f.SystematicLgate(pos),
	})
}

// ScenarioPower reports the power of the VI design with islands
// 1..scenario raised, for a chip at pos (Fig. 5 / Fig. 6 data).
func (f *Flow) ScenarioPower(p *vi.Partition, scenario int, pos variation.Pos) (*power.Report, error) {
	return f.Power(p.Domains(scenario), pos)
}

// ChipWidePower reports the baseline of Figures 5 and 6: the whole
// design raised to high Vdd. Chip-wide adaptation needs no level
// shifters, so for a faithful baseline call this BEFORE
// InsertShifters (and after SimulateWorkload); calling it on a
// shifter-bearing netlist measures the VI layout run chip-wide, a
// conservative variant.
func (f *Flow) ChipWidePower(pos variation.Pos) (*power.Report, error) {
	domains := make([]cell.Domain, f.NL.NumCells())
	for i := range domains {
		domains[i] = cell.DomainHigh
	}
	return f.Power(domains, pos)
}

// Run executes the standard sequence through Characterize.
func (f *Flow) Run() error {
	steps := []func() error{f.Synthesize, f.Place, f.Analyze, f.Characterize}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
