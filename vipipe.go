// Package vipipe is a Go reproduction of "Process Variation Tolerant
// Pipeline Design Through a Placement-Aware Multiple Voltage Island
// Design Style" (Bonesi, Bertozzi, Benini, Macii — DATE 2008).
//
// It implements the paper's full methodology on top of from-scratch
// substrates: a synthetic dual-Vdd 65nm standard-cell library, a
// VEX-like 4-stage VLIW core emitted as a mapped gate-level netlist, a
// min-cut global placer, static and statistical (Monte Carlo) timing
// analysis with the paper's Lgate variation model, a gate-level
// switching-activity simulator driving a PrimePower-style power model,
// Razor-style violation-scenario detection, and the contribution
// itself: placement-aware nested voltage islands with level-shifter
// insertion (see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the reproduced tables and figures).
//
// The methodology of the paper's Fig. 1 is an artifact graph (see
// internal/pipeline and NewGraph): every step is a node keyed by the
// configuration hash, and requesting an artifact computes its
// dependency closure with independent nodes — the four chip-position
// characterizations, the per-strategy island generations — scheduled
// concurrently. The Flow type is the convenient facade over a private
// graph: its step methods request the matching artifacts and mirror
// them into exported fields, so prerequisites resolve automatically
// instead of failing. Long runs stay cancellable and deadline-bounded
// (errors match flowerr.ErrCancelled), and worker panics inside the
// Monte Carlo engine degrade to skipped samples up to
// Config.PanicTolerance:
//
//	ctx := context.Background()
//	flow := vipipe.New(vipipe.DefaultConfig())
//	flow.Run(ctx)                 // synthesize → place → analyze → characterize
//	part, _ := flow.GenerateIslands(ctx, vi.Vertical)  // island generation
//	flow.InsertShifters(ctx, part) // level shifters + incremental placement
//	flow.SimulateWorkload(ctx)     // FIR benchmark switching activity
//	pos, _ := flow.Position("B")
//	rep, _ := flow.ScenarioPower(part, 2, pos)
package vipipe

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"vipipe/internal/cell"
	"vipipe/internal/drc"
	"vipipe/internal/flowerr"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/obs"
	"vipipe/internal/pipeline"
	"vipipe/internal/place"
	"vipipe/internal/power"
	"vipipe/internal/razor"
	"vipipe/internal/sta"
	"vipipe/internal/tmodel"
	"vipipe/internal/variation"
	"vipipe/internal/vex"
	"vipipe/internal/vexsim"
	"vipipe/internal/vi"
)

// Config parameterizes the whole flow.
type Config struct {
	Core  vex.Config
	Place place.Options
	Model variation.Model

	// Recovery emulates post-synthesis power optimization (see
	// internal/sta): per-stage wall targets and the per-cell derate
	// cap.
	Recovery   sta.RecoveryTargets
	MaxDerate  float64
	ClockGuard float64 // clock = nominal critical path * (1 + guard)

	// Monte Carlo characterization.
	MCSamples int
	Seed      int64

	// PanicTolerance is the number of Monte Carlo samples per position
	// that may be lost to recovered worker panics before
	// Characterize fails (see mc.Options.PanicTolerance). Zero
	// tolerates none.
	PanicTolerance int

	// FIR workload (paper: power measured on a FIR benchmark).
	FIRSamples int
	FIRTaps    int

	// Voltage-island generation.
	VISamples    int
	SensorBudget int
}

// DefaultConfig reproduces the paper's setup on the full-size core.
func DefaultConfig() Config {
	return Config{
		Core:         vex.DefaultConfig(),
		Place:        place.DefaultOptions(),
		Model:        variation.Default(),
		Recovery:     sta.DefaultRecoveryTargets(),
		MaxDerate:    12,
		ClockGuard:   0.001,
		MCSamples:    300,
		Seed:         1,
		FIRSamples:   48,
		FIRTaps:      8,
		VISamples:    60,
		SensorBudget: razor.DefaultBudget,
	}
}

// Hash returns a stable content hash of the configuration, suitable
// for keying caches of flow artifacts: two configs with the same hash
// produce bit-identical netlists, placements and characterizations
// (the flow is deterministic for a given Config, see DESIGN.md §6).
// The hash covers every exported field via deterministic JSON
// (encoding/json sorts map keys). It is the graph prefix of every
// pipeline node key ("<hash>/<node>").
func (c Config) Hash() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config is a tree of plain exported value fields; Marshal
		// cannot fail on it short of a programming error.
		panic(fmt.Sprintf("vipipe: config hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// TestConfig is DefaultConfig on the reduced core with lighter Monte
// Carlo settings, for fast tests and examples.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Core = vex.SmallConfig()
	cfg.MCSamples = 120
	cfg.FIRSamples = 12
	cfg.FIRTaps = 4
	cfg.VISamples = 40
	return cfg
}

// Flow carries the state of one end-to-end run. It is a facade over a
// private artifact graph (NewGraph over an unshared in-memory store):
// each step method requests the matching graph artifact — computing
// whatever prerequisites are still missing — and mirrors the results
// into the exported fields below.
type Flow struct {
	Cfg Config
	Lib *cell.Library

	Core *vex.Core
	NL   *netlist.Netlist
	PL   *place.Placement
	STA  *sta.Analyzer

	ClockPS float64
	FmaxMHz float64
	Derate  []float64

	// Characterize results, keyed by position name (A..D).
	MC map[string]*mc.Result
	// ScenarioPositions orders the violating positions least to most
	// severe (C, B, A), as consumed by island generation.
	ScenarioPositions []variation.Pos

	FIR      *vexsim.FIR
	Activity []float64

	graph *pipeline.Graph
	// mutated flips when InsertShifters splices the netlist: the
	// graph's stored artifacts no longer describe the design, so
	// further graph requests are refused and the remaining steps work
	// imperatively on the flow's own state.
	mutated bool
}

// New prepares a flow; no work happens until the step methods run.
func New(cfg Config) *Flow {
	lib := cell.Default65nm()
	return &Flow{
		Cfg:   cfg,
		Lib:   lib,
		graph: newGraph(cfg, lib, pipeline.NewMemStore()),
	}
}

// NewWithStore is New over a caller-supplied artifact store, the hook
// for durable caching: compose a fresh in-memory tier over a shared
// pipeline.DiskStore (opened with DiskCodecs) and repeated runs of the
// same Config skip straight to the persisted characterizations.
//
// The store must not be shared as a *memory* tier between flows: the
// graph's engine-state artifacts (netlist, placement, analyzer) are
// live objects, and InsertShifters mutates them in place. A DiskStore
// is safe to share — DiskCodecs persists only immutable pure-data
// artifacts — so the right composition is
// pipeline.NewTiered(pipeline.NewMemStore(), shared) per flow, which
// internal/cliutil.NewFlow does for the CLIs.
func NewWithStore(cfg Config, store pipeline.Store) *Flow {
	lib := cell.Default65nm()
	return &Flow{
		Cfg:   cfg,
		Lib:   lib,
		graph: newGraph(cfg, lib, store),
	}
}

// Position returns the named chip position of the variation model, or
// an error matching flowerr.ErrBadInput for a name the model does not
// define.
func (f *Flow) Position(name string) (variation.Pos, error) {
	if p, ok := f.Cfg.Model.Position(name); ok {
		return p, nil
	}
	return variation.Pos{}, flowerr.BadInputf("vipipe: unknown chip position %q (model defines A-D)", name)
}

// request resolves graph artifacts and mirrors them into the flow's
// exported fields. Even on error the completed part of the closure is
// adopted, so callers observe partial progress (e.g. the positions
// characterized before a cancellation).
func (f *Flow) request(ctx context.Context, ids ...string) (map[string]any, error) {
	if f.mutated {
		return nil, flowerr.StepOrderf(
			"vipipe: netlist was mutated by InsertShifters, graph artifacts are stale — rebuild from New before %s",
			strings.Join(ids, ","))
	}
	arts, err := f.graph.Request(ctx, ids...)
	f.adopt(arts)
	return arts, err
}

// adopt mirrors computed artifacts into the flow's exported fields.
func (f *Flow) adopt(arts map[string]any) {
	if v, ok := arts[NodeSynth]; ok {
		syn := v.(*Synth)
		f.Core, f.NL = syn.Core, syn.NL()
	}
	if v, ok := arts[NodePlace]; ok {
		f.PL = v.(*place.Placement)
	}
	if v, ok := arts[NodeAnalyze]; ok {
		tm := v.(*Timing)
		f.STA, f.ClockPS, f.FmaxMHz, f.Derate = tm.STA, tm.ClockPS, tm.FmaxMHz, tm.Derate
	}
	if v, ok := arts[NodeWorkload]; ok {
		w := v.(*Workload)
		f.FIR, f.Activity = w.FIR, w.Activity
	}
	if v, ok := arts[NodeLadder]; ok {
		f.ScenarioPositions = v.([]variation.Pos)
	}
	for id, v := range arts {
		if name, ok := strings.CutPrefix(id, "mc/"); ok {
			if f.MC == nil {
				f.MC = make(map[string]*mc.Result)
			}
			f.MC[name] = v.(*mc.Result)
		}
	}
}

// Synthesize builds the performance-optimized gate-level core.
func (f *Flow) Synthesize(ctx context.Context) error {
	_, err := f.request(ctx, NodeSynth)
	return err
}

// Place runs global placement (the paper's physical-synthesis step),
// synthesizing first if needed.
func (f *Flow) Place(ctx context.Context) error {
	_, err := f.request(ctx, NodePlace)
	return err
}

// Analyze runs nominal STA, fixes the clock at the critical path plus
// guard, and applies slack recovery so every stage sits near its wall
// (the paper's performance-optimized starting point, Fig. 3 setup).
// Prerequisite steps run automatically.
func (f *Flow) Analyze(ctx context.Context) error {
	_, err := f.request(ctx, NodeAnalyze)
	return err
}

// Characterize runs the Monte Carlo SSTA at every diagonal position
// and derives the scenario ladder (paper Sections 4.3-4.4). The four
// positions characterize concurrently; on cancellation the positions
// that completed remain in f.MC, and the error matches
// flowerr.ErrCancelled.
func (f *Flow) Characterize(ctx context.Context) error {
	_, err := f.request(ctx, NodeLadder)
	return err
}

// ScenarioLadder derives the scenario positions from per-position
// Monte Carlo results: island k is sized to compensate the most severe
// chip position that will be treated with only k islands, i.e. the
// last position (walking from worst A to best D in the given order)
// whose classification is still at least k. With the canonical ladder
// A=3, B=2, C=1, D=0 this selects C, B, A. It is shared by the
// graph's ladder node and service frontends that assemble the ladder
// from cached characterizations.
func ScenarioLadder(order []variation.Pos, results map[string]*mc.Result) ([]variation.Pos, error) {
	type classified struct {
		pos variation.Pos
		sc  mc.Scenario
	}
	var ladder []classified
	for _, pos := range order {
		res, ok := results[pos.Name]
		if !ok || res == nil {
			return nil, flowerr.BadInputf("vipipe: scenario ladder missing characterization at position %s", pos.Name)
		}
		sc, _ := res.Classify(0)
		ladder = append(ladder, classified{pos, sc})
	}
	var out []variation.Pos
	for want := mc.Scenario(1); want <= 3; want++ {
		var chosen *variation.Pos
		for i := range ladder {
			if ladder[i].sc >= want {
				chosen = &ladder[i].pos
			}
		}
		if chosen != nil {
			out = append(out, *chosen)
		}
	}
	if len(out) == 0 {
		return nil, flowerr.NoScenariof("vipipe: no violation scenarios found — nothing to compensate")
	}
	return out, nil
}

// SensorPlan derives the Razor sensor placement from the worst-case
// (point A) characterization.
func (f *Flow) SensorPlan() (*razor.Plan, error) {
	resA, ok := f.MC["A"]
	if !ok {
		return nil, flowerr.StepOrderf("vipipe: SensorPlan needs the position-A characterization — run Characterize first")
	}
	return razor.NewPlan(f.NL, resA, f.Cfg.SensorBudget), nil
}

// GenerateIslands runs the paper's placement-aware slicing for the
// characterized scenarios. Prerequisite steps (through Characterize)
// run automatically.
func (f *Flow) GenerateIslands(ctx context.Context, strategy vi.Strategy) (*vi.Partition, error) {
	arts, err := f.request(ctx, NodeIslands(strategy))
	if err != nil {
		return nil, err
	}
	return arts[NodeIslands(strategy)].(*vi.Partition), nil
}

// TimingModel returns the compact interface timing model for a
// strategy at a chip position, extracting it (and its dependency
// closure) on first use; repeated calls hit the graph's artifact
// cache, and a disk-tier store survives restarts.
func (f *Flow) TimingModel(ctx context.Context, strategy vi.Strategy, pos variation.Pos) (*tmodel.Model, error) {
	id := NodeTimingModel(strategy, pos.Name)
	arts, err := f.request(ctx, id)
	if err != nil {
		return nil, err
	}
	return arts[id].(*tmodel.Model), nil
}

// WhatIf answers a what-if query against the cached timing model,
// falling back to one exact STA evaluation when the query leaves the
// model's validity domain (see EvalWhatIf).
func (f *Flow) WhatIf(ctx context.Context, strategy vi.Strategy, pos variation.Pos, q tmodel.Query) (tmodel.Answer, error) {
	id := NodeTimingModel(strategy, pos.Name)
	arts, err := f.request(ctx, id, NodeAnalyze, NodeIslands(strategy))
	if err != nil {
		return tmodel.Answer{}, err
	}
	return EvalWhatIf(f.Cfg,
		arts[NodeAnalyze].(*Timing),
		arts[NodeIslands(strategy)].(*vi.Partition),
		arts[id].(*tmodel.Model), pos, q)
}

// InsertShifters splices the partition's level shifters into the
// netlist, extends the placement and the derate vector, and refreshes
// the timing engine. It returns the shifter count and the critical-
// path degradation fraction (paper Section 4.6: 8% vertical, 15%
// horizontal).
//
// The step mutates netlist, placement, derate vector and timing engine
// together, so afterwards the flow's graph artifacts are stale: graph-
// backed steps refuse to run and SimulateWorkload/Power work on the
// mutated state directly. A failure after the netlist was already
// spliced cannot be rolled back; it is reported as an error matching
// flowerr.ErrPartialStep, and the flow must be rebuilt from a fresh
// New before further steps — re-running analysis on the half-updated
// state would silently mix stale and fresh timing.
func (f *Flow) InsertShifters(ctx context.Context, p *vi.Partition) (count int, degradation float64, err error) {
	if p == nil {
		return 0, 0, flowerr.BadInputf("vipipe: InsertShifters with nil partition")
	}
	if f.STA == nil {
		if _, err := f.request(ctx, NodeAnalyze); err != nil {
			return 0, 0, err
		}
	}
	if err := ctxErr(ctx, "InsertShifters"); err != nil {
		return 0, 0, err
	}
	_, span := obs.Start(ctx, "vi.insert_shifters")
	defer span.End()
	before := f.STA.Run(f.ClockPS, f.Derate).CritPS
	count, err = p.InsertShifters(f.PL)
	if err != nil {
		// Nothing was spliced: the partition pre-checks failed and
		// the flow state is untouched.
		return 0, 0, err
	}
	f.mutated = true
	// Clone before extending: the derate vector backs the graph's
	// timing artifact and must not grow in place.
	derate := make([]float64, f.NL.NumCells())
	for i := range derate {
		derate[i] = 1
	}
	copy(derate, f.Derate)
	f.Derate = derate
	if err := f.STA.Refresh(); err != nil {
		return count, 0, flowerr.PartialStepf(
			"vipipe: %d level shifters spliced but timing refresh failed, flow state is inconsistent — rebuild from New: %w",
			count, err)
	}
	after := f.STA.Run(f.ClockPS, f.Derate).CritPS
	span.SetAttr("shifters", count)
	return count, after/before - 1, nil
}

// SimulateWorkload co-simulates the FIR benchmark on the gate-level
// netlist against behavioral memories and records switching activity.
// Run it after any netlist mutation (level shifters, Razor flops) so
// the activity covers the final design: on a pristine flow it is the
// cached workload artifact, on a mutated flow it re-simulates the
// spliced netlist.
func (f *Flow) SimulateWorkload(ctx context.Context) error {
	if f.mutated {
		w, err := simulateWorkload(ctx, f.Cfg, f.Core)
		if err != nil {
			return err
		}
		f.FIR, f.Activity = w.FIR, w.Activity
		return nil
	}
	_, err := f.request(ctx, NodeWorkload)
	return err
}

// SystematicLgate returns per-cell gate lengths at a chip position
// with the random component suppressed: the "mean chip" used for
// scenario power reporting.
func (f *Flow) SystematicLgate(pos variation.Pos) []float64 {
	return systematicLgate(f.Cfg.Model, f.NL, f.PL, pos)
}

// Power runs the power analysis under an explicit domain assignment
// and chip position (leakage scales with the position's systematic
// gate length).
func (f *Flow) Power(domains []cell.Domain, pos variation.Pos) (*power.Report, error) {
	if f.Activity == nil {
		return nil, flowerr.StepOrderf("vipipe: Power needs switching activity — run SimulateWorkload first (and re-run it after InsertShifters)")
	}
	return power.Analyze(power.Inputs{
		NL:       f.NL,
		PL:       f.PL,
		Activity: f.Activity,
		FreqMHz:  f.FmaxMHz,
		Domains:  domains,
		LgateNM:  f.SystematicLgate(pos),
	})
}

// ScenarioPower reports the power of the VI design with islands
// 1..scenario raised, for a chip at pos (Fig. 5 / Fig. 6 data).
func (f *Flow) ScenarioPower(p *vi.Partition, scenario int, pos variation.Pos) (*power.Report, error) {
	if p == nil {
		return nil, flowerr.BadInputf("vipipe: ScenarioPower with nil partition")
	}
	return f.Power(p.Domains(scenario), pos)
}

// ChipWidePower reports the baseline of Figures 5 and 6: the whole
// design raised to high Vdd. Chip-wide adaptation needs no level
// shifters, so for a faithful baseline call this BEFORE
// InsertShifters (and after SimulateWorkload); calling it on a
// shifter-bearing netlist measures the VI layout run chip-wide, a
// conservative variant.
func (f *Flow) ChipWidePower(pos variation.Pos) (*power.Report, error) {
	if f.NL == nil {
		return nil, flowerr.StepOrderf("vipipe: ChipWidePower needs a netlist — run Synthesize first")
	}
	domains := make([]cell.Domain, f.NL.NumCells())
	for i := range domains {
		domains[i] = cell.DomainHigh
	}
	return f.Power(domains, pos)
}

// Check runs the design-rule checks over whatever state the flow has
// accumulated so far (netlist, placement, derate vector, and — when a
// partition is passed — island/level-shifter invariants). It returns
// nil when clean and an error matching flowerr.ErrDRC listing every
// violation otherwise. part may be nil. Run it between steps to catch
// corrupted state before it reaches a hot loop.
func (f *Flow) Check(part *vi.Partition) error {
	rep, err := f.CheckReport(part)
	if err != nil {
		return err
	}
	return rep.Err()
}

// CheckReport runs the same design-rule battery as Check but returns
// the full report, so service frontends can serialize the violation
// list instead of flattening it into an error string.
func (f *Flow) CheckReport(part *vi.Partition) (*drc.Report, error) {
	if f.NL == nil {
		return nil, flowerr.StepOrderf("vipipe: Check needs a netlist — run Synthesize first")
	}
	in := drc.Inputs{NL: f.NL, PL: f.PL, Derate: f.Derate}
	if part != nil {
		in.Region = part.Region
		in.ShiftersInserted = len(part.Shifters) > 0
	}
	return drc.Check(in), nil
}

// Run executes the standard sequence through Characterize: one graph
// request for the scenario ladder computes synthesis, placement,
// analysis and the four concurrent characterizations.
func (f *Flow) Run(ctx context.Context) error {
	return f.Characterize(ctx)
}

// ctxErr reports a context already expired before a step started.
func ctxErr(ctx context.Context, step string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return flowerr.Cancelledf("vipipe: %s: %w", step, err)
	}
	return nil
}
