package vipipe

import (
	"context"
	"fmt"

	"vipipe/internal/cell"
	"vipipe/internal/drc"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/pipeline"
	"vipipe/internal/place"
	"vipipe/internal/power"
	"vipipe/internal/sta"
	"vipipe/internal/variation"
	"vipipe/internal/vex"
	"vipipe/internal/vexsim"
	"vipipe/internal/vi"
)

// Node IDs of the flow's artifact graph. A node's store key is the
// configuration hash plus its ID (e.g. "a1b2c3.../mc/B"), so two
// graphs over the same shared store — however many flows, service
// jobs or CLI runs they serve — deduplicate every artifact.
const (
	// NodeSynth is the performance-optimized gate-level core
	// (artifact *Synth).
	NodeSynth = "synth"
	// NodePlace is the global placement (artifact *place.Placement).
	NodePlace = "place"
	// NodeAnalyze is nominal STA, clock selection and slack recovery
	// (artifact *Timing).
	NodeAnalyze = "analyze"
	// NodeWorkload is the FIR benchmark co-simulation with its
	// switching activity (artifact *Workload).
	NodeWorkload = "workload"
	// NodeLadder is the violation-scenario ladder derived from the
	// per-position characterizations (artifact []variation.Pos).
	NodeLadder = "ladder"
	// NodeDRC is the design-rule report over the placed, analyzed
	// baseline (artifact *drc.Report).
	NodeDRC = "drc"
)

// NodeMC returns the ID of the Monte Carlo characterization at a chip
// position ("mc/A" .. "mc/D"; artifact *mc.Result).
func NodeMC(pos string) string { return "mc/" + pos }

// NodeIslands returns the ID of the voltage-island partition for a
// slicing strategy ("vi/vertical", ...; artifact *vi.Partition).
func NodeIslands(s vi.Strategy) string { return "vi/" + s.String() }

// NodeChipWidePower returns the ID of the chip-wide high-Vdd power
// baseline at a position (artifact *power.Report).
func NodeChipWidePower(pos string) string { return "power/chipwide/" + pos }

// NodeScenarioPower returns the ID of the VI-design power report with
// islands 1..scenario raised, for a chip at pos (artifact
// *power.Report).
func NodeScenarioPower(s vi.Strategy, scenario int, pos string) string {
	return fmt.Sprintf("power/%s/%d/%s", s, scenario, pos)
}

// Synth is the artifact of NodeSynth: the cell library and the mapped
// gate-level core built against it.
type Synth struct {
	Lib  *cell.Library
	Core *vex.Core
}

// NL returns the synthesized netlist.
func (s *Synth) NL() *netlist.Netlist { return s.Core.NL }

// Timing is the artifact of NodeAnalyze: the timing engine with the
// derived clock and the recovered per-cell derate vector.
type Timing struct {
	STA     *sta.Analyzer
	ClockPS float64
	FmaxMHz float64
	Derate  []float64
}

// Workload is the artifact of NodeWorkload: the verified FIR
// benchmark run and its per-net switching activity.
type Workload struct {
	FIR      *vexsim.FIR
	Activity []float64
}

// NewGraph assembles the flow's artifact graph for a configuration
// over a store. Every step of the methodology is a node keyed by
// cfg.Hash(); independent nodes (the four chip-position Monte Carlo
// characterizations, the per-strategy island generations, the power
// evaluations) schedule concurrently, and a shared store makes the
// artifacts content-addressed across graphs. The graph never mutates
// its artifacts: level-shifter insertion — the one netlist-mutating
// step — stays outside, on Flow's private copy.
func NewGraph(cfg Config, store pipeline.Store, opts ...pipeline.Option) *pipeline.Graph {
	return newGraph(cfg, cell.Default65nm(), store, opts...)
}

// newGraph is NewGraph with an explicit library, so Flow can share
// one library instance between its fields and its graph.
func newGraph(cfg Config, lib *cell.Library, store pipeline.Store, opts ...pipeline.Option) *pipeline.Graph {
	g := pipeline.New(cfg.Hash(), store, opts...)
	positions := cfg.Model.DiagonalPositions()

	g.MustAdd(pipeline.Node{
		ID: NodeSynth,
		Compute: func(ctx context.Context, _ map[string]any) (any, error) {
			if err := ctxErr(ctx, NodeSynth); err != nil {
				return nil, err
			}
			core, err := vex.Build(cfg.Core, lib)
			if err != nil {
				return nil, err
			}
			return &Synth{Lib: lib, Core: core}, nil
		},
		Size: func(v any) int64 {
			nl := v.(*Synth).NL()
			return int64(nl.NumCells())*250 + int64(nl.NumNets())*120
		},
	})

	g.MustAdd(pipeline.Node{
		ID:   NodePlace,
		Deps: []string{NodeSynth},
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			if err := ctxErr(ctx, NodePlace); err != nil {
				return nil, err
			}
			return place.Global(deps[NodeSynth].(*Synth).NL(), cfg.Place)
		},
		Size: func(v any) int64 { return int64(v.(*place.Placement).NL.NumCells())*64 + 4096 },
	})

	g.MustAdd(pipeline.Node{
		ID:   NodeAnalyze,
		Deps: []string{NodeSynth, NodePlace},
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			if err := ctxErr(ctx, NodeAnalyze); err != nil {
				return nil, err
			}
			syn := deps[NodeSynth].(*Synth)
			a, err := sta.New(syn.NL(), deps[NodePlace].(*place.Placement))
			if err != nil {
				return nil, err
			}
			nominal := a.Run(1e12, nil)
			clock := nominal.CritPS * (1 + cfg.ClockGuard)
			derate, err := a.SlackRecoveryCtx(ctx, clock, cfg.Recovery, cfg.MaxDerate, 25)
			if err != nil {
				return nil, err
			}
			return &Timing{STA: a, ClockPS: clock, FmaxMHz: sta.FmaxMHz(clock), Derate: derate}, nil
		},
		Size: func(v any) int64 { return int64(len(v.(*Timing).Derate))*200 + 4096 },
	})

	g.MustAdd(pipeline.Node{
		ID:   NodeWorkload,
		Deps: []string{NodeSynth},
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			return simulateWorkload(ctx, cfg, deps[NodeSynth].(*Synth).Core)
		},
		Size: func(v any) int64 { return int64(len(v.(*Workload).Activity))*8 + 8192 },
	})

	mcIDs := make([]string, 0, len(positions))
	for _, pos := range positions {
		pos := pos
		id := NodeMC(pos.Name)
		mcIDs = append(mcIDs, id)
		g.MustAdd(pipeline.Node{
			ID:   id,
			Deps: []string{NodeAnalyze},
			Compute: func(ctx context.Context, deps map[string]any) (any, error) {
				tm := deps[NodeAnalyze].(*Timing)
				// The shared analyzer is safe for concurrent
				// re-timing: mc.Run itself fans workers out over it,
				// and sibling positions run the same way in parallel.
				res, err := mc.Run(ctx, tm.STA, &cfg.Model, pos, mc.Options{
					Samples:        cfg.MCSamples,
					Seed:           cfg.Seed,
					ClockPS:        tm.ClockPS,
					Derate:         tm.Derate,
					PanicTolerance: cfg.PanicTolerance,
				})
				if err != nil {
					return nil, err
				}
				return res, nil
			},
			Size: func(v any) int64 {
				res := v.(*mc.Result)
				return int64(res.Samples)*int64(len(res.PerStage)+1)*16 + 4096
			},
		})
	}

	g.MustAdd(pipeline.Node{
		ID:   NodeLadder,
		Deps: mcIDs,
		Compute: func(_ context.Context, deps map[string]any) (any, error) {
			results := make(map[string]*mc.Result, len(positions))
			for _, pos := range positions {
				results[pos.Name] = deps[NodeMC(pos.Name)].(*mc.Result)
			}
			return ScenarioLadder(positions, results)
		},
	})

	for _, strat := range []vi.Strategy{vi.Vertical, vi.Horizontal, vi.Corner} {
		strat := strat
		g.MustAdd(pipeline.Node{
			ID:   NodeIslands(strat),
			Deps: []string{NodeAnalyze, NodeLadder},
			Compute: func(ctx context.Context, deps map[string]any) (any, error) {
				tm := deps[NodeAnalyze].(*Timing)
				return vi.Generate(ctx, tm.STA, &cfg.Model, deps[NodeLadder].([]variation.Pos), vi.Options{
					Strategy: strat,
					ClockPS:  tm.ClockPS,
					Derate:   tm.Derate,
					Samples:  cfg.VISamples,
					Seed:     cfg.Seed,
				})
			},
			Size: func(v any) int64 { return int64(len(v.(*vi.Partition).Region))*8 + 4096 },
		})
	}

	powerSize := func(any) int64 { return 4096 }
	for _, pos := range positions {
		pos := pos
		g.MustAdd(pipeline.Node{
			ID:   NodeChipWidePower(pos.Name),
			Deps: []string{NodeSynth, NodePlace, NodeAnalyze, NodeWorkload},
			Compute: func(ctx context.Context, deps map[string]any) (any, error) {
				if err := ctxErr(ctx, NodeChipWidePower(pos.Name)); err != nil {
					return nil, err
				}
				nl := deps[NodeSynth].(*Synth).NL()
				domains := make([]cell.Domain, nl.NumCells())
				for i := range domains {
					domains[i] = cell.DomainHigh
				}
				return analyzePower(cfg, deps, domains, pos)
			},
			Size: powerSize,
		})
		for _, strat := range []vi.Strategy{vi.Vertical, vi.Horizontal, vi.Corner} {
			strat := strat
			for scenario := 0; scenario <= 3; scenario++ {
				scenario := scenario
				g.MustAdd(pipeline.Node{
					ID:   NodeScenarioPower(strat, scenario, pos.Name),
					Deps: []string{NodeSynth, NodePlace, NodeAnalyze, NodeWorkload, NodeIslands(strat)},
					Compute: func(ctx context.Context, deps map[string]any) (any, error) {
						if err := ctxErr(ctx, NodeScenarioPower(strat, scenario, pos.Name)); err != nil {
							return nil, err
						}
						part := deps[NodeIslands(strat)].(*vi.Partition)
						return analyzePower(cfg, deps, part.Domains(scenario), pos)
					},
					Size: powerSize,
				})
			}
		}
	}

	addTimingModelNodes(g, cfg, positions)

	g.MustAdd(pipeline.Node{
		ID:   NodeDRC,
		Deps: []string{NodeSynth, NodePlace, NodeAnalyze},
		Compute: func(ctx context.Context, deps map[string]any) (any, error) {
			if err := ctxErr(ctx, NodeDRC); err != nil {
				return nil, err
			}
			return drc.Check(drc.Inputs{
				NL:     deps[NodeSynth].(*Synth).NL(),
				PL:     deps[NodePlace].(*place.Placement),
				Derate: deps[NodeAnalyze].(*Timing).Derate,
			}), nil
		},
	})

	// The MustAdd discipline above keeps the graph well-formed by
	// construction; validating here turns any future wiring mistake
	// into an immediate construction panic instead of a request error.
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// analyzePower runs the power model over graph artifacts for an
// explicit domain assignment at a chip position.
func analyzePower(cfg Config, deps map[string]any, domains []cell.Domain, pos variation.Pos) (*power.Report, error) {
	nl := deps[NodeSynth].(*Synth).NL()
	pl := deps[NodePlace].(*place.Placement)
	return power.Analyze(power.Inputs{
		NL:       nl,
		PL:       pl,
		Activity: deps[NodeWorkload].(*Workload).Activity,
		FreqMHz:  deps[NodeAnalyze].(*Timing).FmaxMHz,
		Domains:  domains,
		LgateNM:  systematicLgate(cfg.Model, nl, pl, pos),
	})
}

// systematicLgate returns per-cell gate lengths at a chip position
// with the random component suppressed: the "mean chip" used for
// scenario power reporting.
func systematicLgate(model variation.Model, nl *netlist.Netlist, pl *place.Placement, pos variation.Pos) []float64 {
	lg := make([]float64, nl.NumCells())
	for i := range lg {
		cx, cy := pl.Center(i)
		lg[i] = model.SystematicLgateNM(pos.XMM+cx/1000, pos.YMM+cy/1000)
	}
	return lg
}

// simulateWorkload co-simulates the FIR benchmark on a core and
// verifies the filter output before reporting switching activity.
func simulateWorkload(ctx context.Context, cfg Config, core *vex.Core) (*Workload, error) {
	fir, err := vexsim.NewFIR(cfg.Core, cfg.FIRSamples, cfg.FIRTaps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb, err := vexsim.NewTestbench(core, fir.Prog, fir.DMem)
	if err != nil {
		return nil, err
	}
	if err := tb.RunContext(ctx, fir.Cycles); err != nil {
		return nil, err
	}
	if idx := fir.CheckResults(tb.DMem); idx >= 0 {
		return nil, fmt.Errorf("vipipe: FIR output wrong at %d — netlist broken", idx)
	}
	return &Workload{FIR: fir, Activity: tb.Activity()}, nil
}
