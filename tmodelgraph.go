package vipipe

import (
	"context"
	"errors"

	"vipipe/internal/cell"
	"vipipe/internal/netlist"
	"vipipe/internal/pipeline"
	"vipipe/internal/place"
	"vipipe/internal/sta"
	"vipipe/internal/tmodel"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
)

// NodeTimingModel returns the ID of the compact interface timing model
// extracted for a slicing strategy at a chip position
// ("tmodel/vertical/A", ...; artifact *tmodel.Model). The model is
// pure data, so DiskCodecs persists it: a restarted daemon answers
// what-if queries without re-extraction.
func NodeTimingModel(s vi.Strategy, pos string) string {
	return "tmodel/" + s.String() + "/" + pos
}

// addTimingModelNodes wires one extraction node per (strategy,
// position) pair into the flow graph.
func addTimingModelNodes(g *pipeline.Graph, cfg Config, positions []variation.Pos) {
	for _, strat := range []vi.Strategy{vi.Vertical, vi.Horizontal, vi.Corner} {
		strat := strat
		for _, pos := range positions {
			pos := pos
			id := NodeTimingModel(strat, pos.Name)
			g.MustAdd(pipeline.Node{
				ID:   id,
				Deps: []string{NodeSynth, NodePlace, NodeAnalyze, NodeIslands(strat)},
				Compute: func(ctx context.Context, deps map[string]any) (any, error) {
					if err := ctxErr(ctx, id); err != nil {
						return nil, err
					}
					return extractTimingModel(cfg, deps, strat, pos)
				},
				Size: func(v any) int64 {
					m := v.(*tmodel.Model)
					return int64(m.Cells.NumCells())*96 + int64(len(m.Sigs))*256 + 4096
				},
			})
		}
	}
}

// extractTimingModel assembles the extraction input from graph
// artifacts: the kernel's timing view, the partition's island regions,
// the position's systematic gate lengths and the recovered derates.
func extractTimingModel(cfg Config, deps map[string]any, strat vi.Strategy, pos variation.Pos) (*tmodel.Model, error) {
	syn := deps[NodeSynth].(*Synth)
	pl := deps[NodePlace].(*place.Placement)
	tm := deps[NodeAnalyze].(*Timing)
	part := deps[NodeIslands(strat)].(*vi.Partition)
	nl := syn.NL()
	n := nl.NumCells()
	xum := make([]float64, n)
	yum := make([]float64, n)
	for i := 0; i < n; i++ {
		xum[i], yum[i] = pl.Center(i)
	}
	kern := sta.NewKernel(tm.STA)
	return tmodel.Extract(tmodel.ExtractInput{
		View:      kern.View(),
		ClockPS:   tm.ClockPS,
		Region:    part.Region,
		Islands:   part.NumIslands(),
		LgNM:      systematicLgate(cfg.Model, nl, pl, pos),
		Derate:    tm.Derate,
		XUM:       xum,
		YUM:       yum,
		Tech:      nl.Lib.Tech,
		LnomNM:    cfg.Model.LnomNM,
		ShifterPS: nominalShifterPS(syn.Lib),
		Pos:       pos.Name,
		Strategy:  strat.String(),
	})
}

// nominalShifterPS estimates one level shifter's delay cost: its
// intrinsic delay plus driving a load like its own input pin.
func nominalShifterPS(lib *cell.Library) float64 {
	ls := lib.Cell(cell.LvlShift)
	return ls.IntrinsicPS + ls.DrivePSPerFF*ls.InputCapFF
}

// EvalWhatIf answers a what-if query with the compact model when the
// query is inside its validity domain, and falls back to one exact STA
// evaluation when it is not (errors.Is(..., tmodel.ErrOutOfDomain)).
// The fallback builds the full per-instance scale vector for the
// mutated operating point — island raise by the partition's regions,
// overlay excursion on the systematic gate lengths — and runs the
// kernel, so its answer carries BoundPS = 0, Exact = true, and is
// bit-identical to Analyzer.RunInto at that operating point. Shifter
// estimates are composition-only: an out-of-domain query with
// Shifters set reports the exact answer with zero crossings.
func EvalWhatIf(cfg Config, tm *Timing, part *vi.Partition, m *tmodel.Model, pos variation.Pos, q tmodel.Query) (tmodel.Answer, error) {
	ans, err := m.Eval(q)
	if err == nil {
		return ans, nil
	}
	if !errors.Is(err, tmodel.ErrOutOfDomain) {
		return tmodel.Answer{}, err
	}
	return exactWhatIf(cfg, tm, part, pos, q)
}

// exactWhatIf is the exact-STA fallback path of EvalWhatIf.
func exactWhatIf(cfg Config, tm *Timing, part *vi.Partition, pos variation.Pos, q tmodel.Query) (tmodel.Answer, error) {
	a := tm.STA
	nl, pl := a.NL, a.PL
	n := nl.NumCells()
	lg := systematicLgate(cfg.Model, nl, pl, pos)
	tech := &nl.Lib.Tech
	loScale := tech.DelayScaler(tech.VddLow)
	hiScale := tech.DelayScaler(tech.VddHigh)
	var deltaNM, r2 float64
	if q.Overlay != nil {
		deltaNM = cfg.Model.LnomNM * q.Overlay.DeltaFrac
		r2 = q.Overlay.RMM * q.Overlay.RMM
	}
	scale := make([]float64, n)
	for i := 0; i < n; i++ {
		lgi := lg[i]
		if q.Overlay != nil {
			cx, cy := pl.Center(i)
			dx := cx/1000 - q.Overlay.XMM
			dy := cy/1000 - q.Overlay.YMM
			if dx*dx+dy*dy <= r2 {
				lgi += deltaNM
			}
		}
		var s float64
		if int(part.Region[i]) <= q.Raise {
			s = hiScale(lgi)
		} else {
			s = loScale(lgi)
		}
		if tm.Derate != nil {
			s *= tm.Derate[i]
		}
		scale[i] = s
	}
	kern := sta.NewKernel(a)
	frame := &sta.Frame{}
	kern.RunFrame(frame, tm.ClockPS, scale)

	ans := tmodel.Answer{
		CritPS:       frame.CritPS,
		FmaxMHz:      sta.FmaxMHz(frame.CritPS),
		WorstSlackPS: frame.WorstSlack,
		Exact:        true,
	}
	for st := netlist.Stage(0); st < netlist.NumStages; st++ {
		if !frame.Present[st] {
			continue
		}
		lane := frame.Lanes[st]
		ans.PerStage = append(ans.PerStage, tmodel.StageAnswer{
			Stage:        st,
			WorstSlackPS: lane.WorstSlack,
			Endpoint:     int32(lane.Endpoint),
		})
	}
	return ans, nil
}
