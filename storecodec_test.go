package vipipe

import (
	"errors"
	"reflect"
	"testing"

	"vipipe/internal/drc"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/power"
	"vipipe/internal/stats"
	"vipipe/internal/variation"
	"vipipe/internal/yield"
)

func TestDiskCodecsSelection(t *testing.T) {
	codecs := DiskCodecs()
	for _, node := range []string{NodeLadder, NodeDRC, "mc/A", "mc/D", "power/chipwide/A", "power/vertical/2/B"} {
		if codecs(node) == nil {
			t.Errorf("node %s: no codec, want persistable", node)
		}
	}
	// Engine-state artifacts hold live netlists/analyzers and must
	// never round-trip through disk.
	for _, node := range []string{NodeSynth, NodePlace, NodeAnalyze, NodeWorkload, "vi/vertical", "vi/horizontal"} {
		if codecs(node) != nil {
			t.Errorf("node %s: has a codec, want memory-only", node)
		}
	}
}

func roundTrip(t *testing.T, node string, v any) any {
	t.Helper()
	c := DiskCodecs()(node)
	if c == nil {
		t.Fatalf("no codec for %s", node)
	}
	data, err := c.Encode(v)
	if err != nil {
		t.Fatalf("encode %s: %v", node, err)
	}
	out, err := c.Decode(data)
	if err != nil {
		t.Fatalf("decode %s: %v", node, err)
	}
	return out
}

func TestMCResultRoundTrip(t *testing.T) {
	in := &mc.Result{
		Pos:       variation.Pos{Name: "A", XMM: 1.5, YMM: 2.5},
		ClockPS:   1234.5,
		Samples:   118,
		Requested: 120,
		Skipped:   []int{3, 77},
		PerStage: map[netlist.Stage]*mc.StageDist{
			1: {
				Stage:    1,
				SlackPS:  []float64{-1, 0, 2.5},
				Fit:      stats.Normal{Mu: 0.5, Sigma: 1.25},
				GOF:      stats.GOFResult{ChiSquare: 3.2, DOF: 5, PValue: 0.66, Accepted: true, Bins: 8},
				KS:       stats.GOFResult{PValue: 0.4, Accepted: true},
				ViolFrac: 0.33, ViolProb: 0.31, Endpoints: 42,
			},
			2: {Stage: 2, FitErr: errors.New("fit rejected: sigma collapsed")},
		},
		CritPS:             []float64{1200, 1250, 1300},
		EndpointViolations: map[int]int{7: 3, 9: 1},
		StageCriticals:     map[netlist.Stage]map[int]int{1: {7: 5}, 2: {9: 2}},
	}
	got := roundTrip(t, "mc/A", in).(*mc.Result)
	if got.PerStage[2].FitErr == nil || got.PerStage[2].FitErr.Error() != "fit rejected: sigma collapsed" {
		t.Fatalf("FitErr lost: %v", got.PerStage[2].FitErr)
	}
	if got.PerStage[1].FitErr != nil {
		t.Fatalf("clean stage grew a FitErr: %v", got.PerStage[1].FitErr)
	}
	// Null the errors (compared above) and DeepEqual the rest.
	in.PerStage[2].FitErr, got.PerStage[2].FitErr = nil, nil
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, got)
	}
}

func TestPowerReportRoundTrip(t *testing.T) {
	in := &power.Report{
		FreqMHz:   450,
		DynamicMW: 12.5,
		LeakMW:    3.25,
		ByUnit: []power.UnitPower{
			{Unit: "alu", DynamicMW: 6, LeakMW: 1},
			{Unit: "regfile", DynamicMW: 4, LeakMW: 0.5},
		},
		ShifterDynMW:  0.25,
		ShifterLeakMW: 0.05,
		ByDomain: [2]power.UnitPower{
			{Unit: "low", DynamicMW: 5, LeakMW: 1.5},
			{Unit: "high", DynamicMW: 7.5, LeakMW: 1.75},
		},
		CellLeakNW: []float64{1.5, 2.5, 3.5},
	}
	got := roundTrip(t, "power/chipwide/B", in).(*power.Report)
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, got)
	}
}

func TestLadderRoundTrip(t *testing.T) {
	in := []variation.Pos{{Name: "C", XMM: 3, YMM: 3}, {Name: "B", XMM: 2, YMM: 2}, {Name: "A", XMM: 1, YMM: 1}}
	got := roundTrip(t, NodeLadder, in).([]variation.Pos)
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch: in=%v out=%v", in, got)
	}
}

func TestDRCReportRoundTrip(t *testing.T) {
	in := &drc.Report{
		Violations: []drc.Violation{{Rule: "placement", Msg: "cell off grid"}},
		Truncated:  2,
	}
	got := roundTrip(t, NodeDRC, in).(*drc.Report)
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, got)
	}
}

func TestCodecRejectsWrongType(t *testing.T) {
	c := DiskCodecs()("mc/A")
	if _, err := c.Encode(&power.Report{}); err == nil {
		t.Fatal("mc codec encoded a power report")
	}
	if _, err := c.Decode([]byte("not gob")); err == nil {
		t.Fatal("mc codec decoded garbage")
	}
}

func TestShardStatRoundTrip(t *testing.T) {
	in := &yield.ShardStat{
		Key: "abcd1234", Pos: "r2c3", Shards: 2, Samples: 500,
		Crit: yield.Moments{
			Count: 500,
			Sum:   yield.FixedFromFloat(2_000_000.5),
			SumSq: yield.FixedFromFloat(8_000_000_000.25),
			Min:   3901.5, Max: 4410.25,
		},
		Hist:       yield.Histogram{LoPS: 3600, HiPS: 4600, Bins: []int64{3, 0, 490, 5}, Over: 2},
		HasOverlay: true,
		OvCrit:     yield.Moments{Count: 500, Sum: yield.FixedFromFloat(-12.5), Min: -1, Max: 2},
		OvHist:     yield.Histogram{LoPS: 3600, HiPS: 4600, Bins: []int64{1, 1, 497, 1}},
	}
	got := roundTrip(t, NodeFieldShard("r2c3", "abcd1234", 1), in).(*yield.ShardStat)
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, got)
	}
}

func TestSurfaceRoundTrip(t *testing.T) {
	in := &yield.Surface{
		PlanHash: "deadbeef01234567", ClockPS: 4100, NX: 2, NY: 1,
		PeriodsPS: []float64{3690, 4715},
		Positions: []yield.SurfacePos{
			{Name: "r0c0", Key: "k0", Samples: 1000, Shards: 4,
				MeanPS: 4100.5, StdPS: 55.25, MinPS: 3900, MaxPS: 4400,
				Yields: []float64{0.25, 1}},
			{Name: "r0c1", XMM: 14, Key: "k1", Samples: 1000, Shards: 4,
				MeanPS: 4050, StdPS: 50, MinPS: 3880, MaxPS: 4300,
				Yields:     []float64{0.5, 1},
				HasOverlay: true, OvMeanPS: 4200, OvStdPS: 60, OvMinPS: 3950, OvMaxPS: 4500,
				OvYields: []float64{0.125, 1}},
		},
	}
	got := roundTrip(t, NodeFieldSurface("deadbeef01234567"), in).(*yield.Surface)
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, got)
	}
	// The surface prefix must not be shadowed by the shard codec.
	if _, err := DiskCodecs()(NodeFieldSurface("x")).Encode(&yield.ShardStat{}); err == nil {
		t.Fatal("surface codec accepted a shard stat")
	}
}
