# Build and verification entry points. `make ci` is the full battery a
# change must pass before merging.

GO ?= go

.PHONY: all build fmt vet lint lint-full test race fault fuzz service-it crash-it bench bench-smoke bench-diff bench-diff-advisory ci clean

all: build

build:
	$(GO) build ./...

# Formatting gate: fails listing the offending files, so ci rejects
# unformatted code instead of silently reformatting it.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/vipilint). `lint` is the
# pre-commit mode: AST-only (-fast), no type checking, sub-second.
# It runs without -strict because suppressions of typed-only findings
# (artifactalias, sharedcapture) look stale to the AST layer.
lint:
	$(GO) run ./cmd/vipilint -fast .

# Full typed analysis: loads the module under go/types, runs the
# dataflow rules (artifact ownership, shared-capture races) and the
# type-resolved versions of the core rules, and rejects stale
# //lint:ignore directives. This is what CI gates on.
lint-full:
	$(GO) run ./cmd/vipilint -strict .

test:
	$(GO) test ./...

# The concurrency-heavy engines (Monte Carlo dispatch/cancellation,
# gate-level simulation, the pipeline graph scheduler) and the facade
# run under the race detector; this is what validates the worker-drain
# guarantees of mc.Run and the graph's concurrent node scheduling.
race:
	$(GO) test -race . ./internal/pipeline ./internal/mc ./internal/gsim ./internal/vexsim ./internal/flowerr ./internal/drc ./internal/tmodel

# The fault-injection suite: corrupted SDF/DEF/netlist/placement/region
# artifacts must yield typed errors, never panics.
fault:
	$(GO) test -v -run 'TestCorrupted|TestGuard' ./internal/faultinject

# Short deterministic fuzz pass over the interchange parsers.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseSDF -fuzztime=10s ./internal/sdf
	$(GO) test -run=^$$ -fuzz=FuzzParseDEF -fuzztime=10s ./internal/def

# Service integration: the in-process HTTP tests (submit/poll/cancel/
# drain, >=8 concurrent clients, backpressure, degraded serving) plus
# the daemon end-to-end tests, which build cmd/vipiped, boot it on a
# random port, drive jobs over HTTP and SIGTERM it. Everything runs
# under the race detector; the daemon exits inside the test, so
# nothing leaks.
service-it:
	$(GO) test -race -count=1 ./internal/service/... ./cmd/vipiped

# Durability integration: kill -9 a daemon mid-computation, restart it
# over the same -store directory, and prove the second sweep is warm
# while a deliberately corrupted artifact is quarantined, never
# served. Runs without -race (it drives the real binary; the in-test
# harness is trivial) so the crash cycle stays fast.
crash-it:
	$(GO) test -count=1 -run 'TestDaemonCrashRecovery|TestDaemonDegradedStore' ./cmd/vipiped

# Service-engine benchmark. `make bench` runs the full sweep benchmark
# and writes benchstat-friendly output to BENCH_service.json (go test
# -json stream; pipe `jq -r 'select(.Action=="output").Output'` into
# benchstat, or read the Benchmark lines directly). bench-smoke is the
# one-iteration ci variant: it proves the benchmark still compiles and
# runs without paying measurement time.
bench:
	$(GO) test -json -run '^$$' -bench 'BenchmarkServiceScenarioSweep|BenchmarkFieldSweep|BenchmarkWhatIf' -benchmem . | tee BENCH_service.json

bench-smoke:
	$(GO) test -run 'TestFieldSweepWarmDirtySpeedup|TestWhatIfSpeedup' -bench 'BenchmarkServiceScenarioSweep|BenchmarkFieldSweep|BenchmarkWhatIf' -benchtime 1x .

# Benchmark-regression gate: measure a fresh run into BENCH_fresh.json
# (never overwriting the committed baseline) and compare the gated
# warm-path speedup ratios against BENCH_service.json via
# cmd/benchdiff — ratios, not absolute ns/op, so a slower machine
# passes but a >25% relative regression of a speedup fails.
bench-diff:
	$(GO) test -json -run '^$$' -bench 'BenchmarkServiceScenarioSweep|BenchmarkFieldSweep|BenchmarkWhatIf' -benchmem . > BENCH_fresh.json
	$(GO) run ./cmd/benchdiff -old BENCH_service.json -new BENCH_fresh.json

# ci runs the ratio gate advisory (the leading `-`): benchmark noise
# on shared runners must not block a merge, but the report still
# lands in the log. bench-smoke stays the hard gate that the
# benchmarks build and run.
bench-diff-advisory:
	-$(MAKE) bench-diff

ci: fmt vet lint-full build race test fault service-it crash-it bench-smoke bench-diff-advisory

clean:
	$(GO) clean ./...
