package vipipe

import (
	"bytes"
	"context"
	"math"
	"testing"

	"vipipe/internal/pipeline"
	"vipipe/internal/sta"
	"vipipe/internal/tmodel"
	"vipipe/internal/vi"
)

func whatIfConfig() Config {
	cfg := TestConfig()
	cfg.MCSamples = 40
	cfg.VISamples = 24
	return cfg
}

// TestWhatIfComposedWithinBound pins the serving contract at the flow
// layer: every in-domain what-if answer composed from the cached model
// must lower-bound the exact critical path and land within the model's
// stated error bound.
func TestWhatIfComposedWithinBound(t *testing.T) {
	ctx := context.Background()
	f := New(whatIfConfig())
	pos, err := f.Position("B")
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.TimingModel(ctx, vi.Vertical, pos)
	if err != nil {
		t.Fatal(err)
	}
	if m.BoundPS <= 0 {
		t.Fatalf("model has no stated bound: %g", m.BoundPS)
	}
	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	tm := &Timing{STA: f.STA, ClockPS: f.ClockPS, FmaxMHz: f.FmaxMHz, Derate: f.Derate}

	wmm, hmm := f.PL.DieW/1000, f.PL.DieH/1000
	queries := []tmodel.Query{
		{Raise: 0},
		{Raise: part.NumIslands()},
		{Raise: 1, Overlay: &tmodel.Disc{XMM: 0.4 * wmm, YMM: 0.6 * hmm, RMM: 0.3 * wmm, DeltaFrac: 0.05}},
		{Raise: 0, Overlay: &tmodel.Disc{XMM: 0.7 * wmm, YMM: 0.3 * hmm, RMM: 0.2 * wmm, DeltaFrac: -0.04}},
	}
	for qi, q := range queries {
		ans, err := EvalWhatIf(f.Cfg, tm, part, m, pos, q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if ans.Exact {
			t.Fatalf("query %d escaped the model domain", qi)
		}
		exact, err := exactWhatIf(f.Cfg, tm, part, pos, q)
		if err != nil {
			t.Fatal(err)
		}
		gap := exact.CritPS - ans.CritPS
		if gap < -1e-6 || gap > m.BoundPS {
			t.Errorf("query %d: composed crit %.3f vs exact %.3f — gap %.3f outside (0, %.3f]",
				qi, ans.CritPS, exact.CritPS, gap, m.BoundPS)
		}
	}
}

// TestWhatIfFallbackBitIdentical forces the exact-STA fallback with an
// out-of-domain overlay excursion and proves the answer is
// bit-identical to an independently built kernel run at the same
// operating point.
func TestWhatIfFallbackBitIdentical(t *testing.T) {
	ctx := context.Background()
	f := New(whatIfConfig())
	pos, err := f.Position("B")
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.TimingModel(ctx, vi.Vertical, pos)
	if err != nil {
		t.Fatal(err)
	}
	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		t.Fatal(err)
	}
	tm := &Timing{STA: f.STA, ClockPS: f.ClockPS, FmaxMHz: f.FmaxMHz, Derate: f.Derate}

	wmm, hmm := f.PL.DieW/1000, f.PL.DieH/1000
	q := tmodel.Query{
		Raise:   1,
		Overlay: &tmodel.Disc{XMM: 0.5 * wmm, YMM: 0.5 * hmm, RMM: 0.4 * wmm, DeltaFrac: 2 * m.MaxDeltaFrac},
	}
	ans, err := EvalWhatIf(f.Cfg, tm, part, m, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("out-of-domain query did not fall back to exact STA")
	}
	if ans.BoundPS != 0 || ans.Crossings != 0 {
		t.Fatalf("fallback answer carries composed fields: bound %g, crossings %d", ans.BoundPS, ans.Crossings)
	}

	// Independent reference: rebuild the operating point's scale vector
	// from first principles and run the kernel directly.
	n := f.NL.NumCells()
	lg := systematicLgate(f.Cfg.Model, f.NL, f.PL, pos)
	tech := &f.NL.Lib.Tech
	loScale := tech.DelayScaler(tech.VddLow)
	hiScale := tech.DelayScaler(tech.VddHigh)
	deltaNM := f.Cfg.Model.LnomNM * q.Overlay.DeltaFrac
	scale := make([]float64, n)
	for i := 0; i < n; i++ {
		lgi := lg[i]
		cx, cy := f.PL.Center(i)
		dx, dy := cx/1000-q.Overlay.XMM, cy/1000-q.Overlay.YMM
		if dx*dx+dy*dy <= q.Overlay.RMM*q.Overlay.RMM {
			lgi += deltaNM
		}
		if int(part.Region[i]) <= q.Raise {
			scale[i] = hiScale(lgi) * f.Derate[i]
		} else {
			scale[i] = loScale(lgi) * f.Derate[i]
		}
	}
	var frame sta.Frame
	sta.NewKernel(f.STA).RunFrame(&frame, f.ClockPS, scale)

	if math.Float64bits(ans.CritPS) != math.Float64bits(frame.CritPS) {
		t.Errorf("fallback crit %v != reference %v", ans.CritPS, frame.CritPS)
	}
	if math.Float64bits(ans.WorstSlackPS) != math.Float64bits(frame.WorstSlack) {
		t.Errorf("fallback slack %v != reference %v", ans.WorstSlackPS, frame.WorstSlack)
	}
	for _, st := range ans.PerStage {
		lane := frame.Lanes[st.Stage]
		if !frame.Present[st.Stage] {
			t.Errorf("stage %v reported but absent in reference", st.Stage)
			continue
		}
		if math.Float64bits(st.WorstSlackPS) != math.Float64bits(lane.WorstSlack) {
			t.Errorf("stage %v slack %v != reference %v", st.Stage, st.WorstSlackPS, lane.WorstSlack)
		}
		if int(st.Endpoint) != lane.Endpoint {
			t.Errorf("stage %v endpoint %d != reference %d", st.Stage, st.Endpoint, lane.Endpoint)
		}
	}
}

// TestTimingModelPersistsToDisk proves the tmodel/* node is cached in
// both tiers: repeated requests return the identical artifact, the gob
// lands in the disk store, and a fresh memory tier over the same disk
// decodes a byte-identical model without recomputation.
func TestTimingModelPersistsToDisk(t *testing.T) {
	ctx := context.Background()
	cfg := whatIfConfig()
	disk, err := pipeline.OpenDiskStore(t.TempDir(), DiskCodecs())
	if err != nil {
		t.Fatal(err)
	}
	f := NewWithStore(cfg, pipeline.NewTiered(pipeline.NewMemStore(), disk))
	pos, err := f.Position("C")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := f.TimingModel(ctx, vi.Horizontal, pos)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := f.TimingModel(ctx, vi.Horizontal, pos)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("second request did not hit the memory tier")
	}

	id := NodeTimingModel(vi.Horizontal, pos.Name)
	codec := DiskCodecs()(id)
	if codec == nil {
		t.Fatalf("no disk codec for %s", id)
	}
	decoded, _, ok := disk.Get(ctx, f.graph.Key(id))
	if !ok {
		t.Fatalf("artifact %s missing from disk store", id)
	}
	if _, ok := decoded.(*tmodel.Model); !ok {
		t.Fatalf("decoded artifact is %T, want *tmodel.Model", decoded)
	}
	want, err := codec.Encode(m1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Encode(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("disk round-trip is not byte-identical")
	}
}
