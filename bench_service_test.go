package vipipe_test

import (
	"context"
	"testing"

	"vipipe"
	"vipipe/internal/cell"
	"vipipe/internal/obs"
	"vipipe/internal/service"
	"vipipe/internal/sta"
	"vipipe/internal/tmodel"
	"vipipe/internal/variation"
	"vipipe/internal/vi"
)

// BenchmarkServiceScenarioSweep measures the service engine's A-D
// scenario sweep cold (fresh cache each iteration: full synthesize +
// place + analyze + 4x Monte Carlo) against cache-warm (one engine,
// every artifact hits). The gap is the value of the content-addressed
// cache; warm iterations are essentially the power evaluation alone.
//
// This lives in the external test package: internal/service imports
// the root vipipe package, so an in-package benchmark would be an
// import cycle.
func BenchmarkServiceScenarioSweep(b *testing.B) {
	req := service.Request{
		Kind:     "sweep",
		Strategy: "vertical",
		Config: service.ConfigSpec{
			Small: true, Seed: 1,
			MCSamples: 60, VISamples: 24, FIRSamples: 8, FIRTaps: 4,
		},
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := service.NewEngine(service.NewCache(64<<20), nil)
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		eng := service.NewEngine(service.NewCache(64<<20), nil)
		if _, err := eng.Run(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := eng.Cache().Stats()
		b.ReportMetric(st.HitRate(), "cache_hit_rate")
	})
}

// BenchmarkFieldSweep sizes the exposure-field yield engine against
// the four-position characterize baseline it generalizes: a 64x-denser
// 8x8 sweep (field64/cold) must land well under 64x the baseline's
// wall clock — the shard kernel skips the per-stage bookkeeping mc.Run
// carries — and a warm re-sweep after one overlay edit
// (field64/warm_dirty) touches a single position's shards, so it runs
// orders of magnitude under cold. The counters metric reports shards
// actually computed per iteration.
func BenchmarkFieldSweep(b *testing.B) {
	spec := service.ConfigSpec{
		Small: true, Seed: 1,
		MCSamples: 60, VISamples: 24, FIRSamples: 8, FIRTaps: 4,
	}
	ctx := context.Background()

	b.Run("four_pos/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := service.NewEngine(service.NewCache(64<<20), nil)
			for _, pos := range []string{"A", "B", "C", "D"} {
				req := service.Request{Kind: "characterize", Position: pos, Config: spec}
				if _, err := eng.Run(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	req := service.Request{Kind: "field_sweep", Grid: "8x8", Shards: 4, Points: 17, Config: spec}

	b.Run("field64/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := service.NewMetrics()
			eng := service.NewEngine(service.NewCache(64<<20), m)
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(m.Snapshot(nil, nil).Counters["yield.shards_computed"]), "shards/op")
			}
		}
	})

	b.Run("field64/warm_dirty", func(b *testing.B) {
		m := service.NewMetrics()
		eng := service.NewEngine(service.NewCache(256<<20), m)
		if _, err := eng.Run(ctx, req); err != nil {
			b.Fatal(err)
		}
		cold := m.Snapshot(nil, nil).Counters["yield.shards_computed"]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dirty := req
			// A fresh delta each iteration re-keys the position's
			// shards, so every iteration pays the one-position
			// recompute instead of a full cache hit.
			dirty.Overlays = []service.OverlaySpec{{
				Pos: "r3c4", XMM: 5, YMM: 5, RMM: 3,
				DeltaFrac: 0.01 + 0.0005*float64(i),
			}}
			if _, err := eng.Run(ctx, dirty); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		total := m.Snapshot(nil, nil).Counters["yield.shards_computed"]
		b.ReportMetric(float64(total-cold)/float64(b.N), "shards/op")
	})
}

// whatIfFixture materializes the what-if serving baseline once: a
// warmed flow, its vertical partition and the extracted compact model,
// plus everything an explicit re-extraction needs.
type whatIfFixture struct {
	f    *vipipe.Flow
	pos  variation.Pos
	part *vi.Partition
	m    *tmodel.Model
	tm   *vipipe.Timing
	in   tmodel.ExtractInput
}

func newWhatIfFixture(tb testing.TB) *whatIfFixture {
	tb.Helper()
	ctx := context.Background()
	cfg := vipipe.TestConfig()
	cfg.MCSamples = 60
	cfg.VISamples = 24
	cfg.FIRSamples = 8
	cfg.FIRTaps = 4
	f := vipipe.New(cfg)
	pos, err := f.Position("B")
	if err != nil {
		tb.Fatal(err)
	}
	m, err := f.TimingModel(ctx, vi.Vertical, pos)
	if err != nil {
		tb.Fatal(err)
	}
	part, err := f.GenerateIslands(ctx, vi.Vertical)
	if err != nil {
		tb.Fatal(err)
	}
	n := f.NL.NumCells()
	xum := make([]float64, n)
	yum := make([]float64, n)
	for i := 0; i < n; i++ {
		xum[i], yum[i] = f.PL.Center(i)
	}
	ls := f.Lib.Cell(cell.LvlShift)
	return &whatIfFixture{
		f:    f,
		pos:  pos,
		part: part,
		m:    m,
		tm:   &vipipe.Timing{STA: f.STA, ClockPS: f.ClockPS, FmaxMHz: f.FmaxMHz, Derate: f.Derate},
		in: tmodel.ExtractInput{
			View:      sta.NewKernel(f.STA).View(),
			ClockPS:   f.ClockPS,
			Region:    part.Region,
			Islands:   part.NumIslands(),
			LgNM:      f.SystematicLgate(pos),
			Derate:    f.Derate,
			XUM:       xum,
			YUM:       yum,
			Tech:      f.NL.Lib.Tech,
			LnomNM:    cfg.Model.LnomNM,
			ShifterPS: ls.IntrinsicPS + ls.DrivePSPerFF*ls.InputCapFF,
			Pos:       pos.Name,
			Strategy:  vi.Vertical.String(),
		},
	}
}

// whatIfQueries returns the three query classes: the group-sum
// raise/shifter query (the steady-state currency of island search),
// an in-domain overlay query (walks the stored cells), and an
// out-of-domain query that forces the exact-STA fallback.
func (x *whatIfFixture) whatIfQueries() (raise, overlay, fallback tmodel.Query) {
	wmm, hmm := x.f.PL.DieW/1000, x.f.PL.DieH/1000
	raise = tmodel.Query{Raise: 1, Shifters: true}
	overlay = tmodel.Query{Raise: 1, Overlay: &tmodel.Disc{
		XMM: 0.4 * wmm, YMM: 0.6 * hmm, RMM: 0.3 * wmm, DeltaFrac: 0.05}}
	fallback = overlay
	fallback.Overlay = &tmodel.Disc{
		XMM: 0.4 * wmm, YMM: 0.6 * hmm, RMM: 0.3 * wmm,
		DeltaFrac: 2 * x.m.MaxDeltaFrac}
	return raise, overlay, fallback
}

// BenchmarkWhatIf sizes the what-if serving tiers: cold_extract pays
// the one-time model extraction (validation probes included),
// warm_composed is the steady-state microsecond path every query
// takes, and full_sta is the exact fallback a composed answer
// replaces — the ratio between the last two is the point of
// internal/tmodel.
func BenchmarkWhatIf(b *testing.B) {
	x := newWhatIfFixture(b)
	raise, overlay, fallback := x.whatIfQueries()

	b.Run("cold_extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tmodel.Extract(x.in); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm_composed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := x.m.Eval(raise); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm_overlay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := x.m.Eval(overlay); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("full_sta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ans, err := vipipe.EvalWhatIf(x.f.Cfg, x.tm, x.part, x.m, x.pos, fallback)
			if err != nil {
				b.Fatal(err)
			}
			if !ans.Exact {
				b.Fatal("fallback query answered by the model")
			}
		}
	})
}

// TestWhatIfSpeedup is the bench-smoke gate for the composed path: a
// warm raise/shifter what-if query — the group-sum tier island search
// hammers — must answer at least 50x faster than the exact STA
// evaluation it stands in for. (Overlay queries re-price the stored
// cells through the Vdd scaler, so their ceiling is the model’s
// cell-count ratio, not 50x; BenchmarkWhatIf/warm_overlay tracks
// them.) A regression here means the group-sum path grew a hidden
// cell walk.
func TestWhatIfSpeedup(t *testing.T) {
	x := newWhatIfFixture(t)
	raise, _, fallback := x.whatIfQueries()

	const warmIters, exactIters = 2000, 8
	t0 := obs.Now()
	for i := 0; i < warmIters; i++ {
		if _, err := x.m.Eval(raise); err != nil {
			t.Fatal(err)
		}
	}
	warm := obs.Since(t0) / warmIters

	t1 := obs.Now()
	for i := 0; i < exactIters; i++ {
		ans, err := vipipe.EvalWhatIf(x.f.Cfg, x.tm, x.part, x.m, x.pos, fallback)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Exact {
			t.Fatal("fallback query answered by the model")
		}
	}
	exact := obs.Since(t1) / exactIters

	if exact < 50*warm {
		t.Fatalf("composed what-if %v not ≥50x faster than full STA %v", warm, exact)
	}
}

// TestFieldSweepWarmDirtySpeedup is the bench-smoke gate for the warm
// path: a re-sweep that dirties one of sixteen positions must run at
// least 5x faster than the cold sweep (the real ratio is far higher —
// one position's shards against sixteen positions plus the baseline
// build). A regression here means shard keys stopped isolating plan
// edits and the warm path went cold.
func TestFieldSweepWarmDirtySpeedup(t *testing.T) {
	spec := service.ConfigSpec{
		Small: true, Seed: 1,
		MCSamples: 60, VISamples: 24, FIRSamples: 8, FIRTaps: 4,
	}
	req := service.Request{Kind: "field_sweep", Grid: "4x4", Shards: 4, Points: 9, Config: spec}
	ctx := context.Background()
	eng := service.NewEngine(service.NewCache(128<<20), nil)

	t0 := obs.Now()
	if _, err := eng.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	cold := obs.Since(t0)

	dirty := req
	dirty.Overlays = []service.OverlaySpec{{Pos: "r1c1", XMM: 2, YMM: 2, RMM: 3, DeltaFrac: 0.03}}
	t1 := obs.Now()
	if _, err := eng.Run(ctx, dirty); err != nil {
		t.Fatal(err)
	}
	warm := obs.Since(t1)

	if cold < 5*warm {
		t.Fatalf("warm-dirty re-sweep %v not ≥5x faster than cold %v", warm, cold)
	}
}
