package vipipe_test

import (
	"context"
	"testing"

	"vipipe/internal/service"
)

// BenchmarkServiceScenarioSweep measures the service engine's A-D
// scenario sweep cold (fresh cache each iteration: full synthesize +
// place + analyze + 4x Monte Carlo) against cache-warm (one engine,
// every artifact hits). The gap is the value of the content-addressed
// cache; warm iterations are essentially the power evaluation alone.
//
// This lives in the external test package: internal/service imports
// the root vipipe package, so an in-package benchmark would be an
// import cycle.
func BenchmarkServiceScenarioSweep(b *testing.B) {
	req := service.Request{
		Kind:     "sweep",
		Strategy: "vertical",
		Config: service.ConfigSpec{
			Small: true, Seed: 1,
			MCSamples: 60, VISamples: 24, FIRSamples: 8, FIRTaps: 4,
		},
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := service.NewEngine(service.NewCache(64<<20), nil)
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		eng := service.NewEngine(service.NewCache(64<<20), nil)
		if _, err := eng.Run(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := eng.Cache().Stats()
		b.ReportMetric(st.HitRate(), "cache_hit_rate")
	})
}
