package vipipe_test

import (
	"context"
	"testing"

	"vipipe/internal/obs"
	"vipipe/internal/service"
)

// BenchmarkServiceScenarioSweep measures the service engine's A-D
// scenario sweep cold (fresh cache each iteration: full synthesize +
// place + analyze + 4x Monte Carlo) against cache-warm (one engine,
// every artifact hits). The gap is the value of the content-addressed
// cache; warm iterations are essentially the power evaluation alone.
//
// This lives in the external test package: internal/service imports
// the root vipipe package, so an in-package benchmark would be an
// import cycle.
func BenchmarkServiceScenarioSweep(b *testing.B) {
	req := service.Request{
		Kind:     "sweep",
		Strategy: "vertical",
		Config: service.ConfigSpec{
			Small: true, Seed: 1,
			MCSamples: 60, VISamples: 24, FIRSamples: 8, FIRTaps: 4,
		},
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := service.NewEngine(service.NewCache(64<<20), nil)
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		eng := service.NewEngine(service.NewCache(64<<20), nil)
		if _, err := eng.Run(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := eng.Cache().Stats()
		b.ReportMetric(st.HitRate(), "cache_hit_rate")
	})
}

// BenchmarkFieldSweep sizes the exposure-field yield engine against
// the four-position characterize baseline it generalizes: a 64x-denser
// 8x8 sweep (field64/cold) must land well under 64x the baseline's
// wall clock — the shard kernel skips the per-stage bookkeeping mc.Run
// carries — and a warm re-sweep after one overlay edit
// (field64/warm_dirty) touches a single position's shards, so it runs
// orders of magnitude under cold. The counters metric reports shards
// actually computed per iteration.
func BenchmarkFieldSweep(b *testing.B) {
	spec := service.ConfigSpec{
		Small: true, Seed: 1,
		MCSamples: 60, VISamples: 24, FIRSamples: 8, FIRTaps: 4,
	}
	ctx := context.Background()

	b.Run("four_pos/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := service.NewEngine(service.NewCache(64<<20), nil)
			for _, pos := range []string{"A", "B", "C", "D"} {
				req := service.Request{Kind: "characterize", Position: pos, Config: spec}
				if _, err := eng.Run(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	req := service.Request{Kind: "field_sweep", Grid: "8x8", Shards: 4, Points: 17, Config: spec}

	b.Run("field64/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := service.NewMetrics()
			eng := service.NewEngine(service.NewCache(64<<20), m)
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(m.Snapshot(nil, nil).Counters["yield.shards_computed"]), "shards/op")
			}
		}
	})

	b.Run("field64/warm_dirty", func(b *testing.B) {
		m := service.NewMetrics()
		eng := service.NewEngine(service.NewCache(256<<20), m)
		if _, err := eng.Run(ctx, req); err != nil {
			b.Fatal(err)
		}
		cold := m.Snapshot(nil, nil).Counters["yield.shards_computed"]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dirty := req
			// A fresh delta each iteration re-keys the position's
			// shards, so every iteration pays the one-position
			// recompute instead of a full cache hit.
			dirty.Overlays = []service.OverlaySpec{{
				Pos: "r3c4", XMM: 5, YMM: 5, RMM: 3,
				DeltaFrac: 0.01 + 0.0005*float64(i),
			}}
			if _, err := eng.Run(ctx, dirty); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		total := m.Snapshot(nil, nil).Counters["yield.shards_computed"]
		b.ReportMetric(float64(total-cold)/float64(b.N), "shards/op")
	})
}

// TestFieldSweepWarmDirtySpeedup is the bench-smoke gate for the warm
// path: a re-sweep that dirties one of sixteen positions must run at
// least 5x faster than the cold sweep (the real ratio is far higher —
// one position's shards against sixteen positions plus the baseline
// build). A regression here means shard keys stopped isolating plan
// edits and the warm path went cold.
func TestFieldSweepWarmDirtySpeedup(t *testing.T) {
	spec := service.ConfigSpec{
		Small: true, Seed: 1,
		MCSamples: 60, VISamples: 24, FIRSamples: 8, FIRTaps: 4,
	}
	req := service.Request{Kind: "field_sweep", Grid: "4x4", Shards: 4, Points: 9, Config: spec}
	ctx := context.Background()
	eng := service.NewEngine(service.NewCache(128<<20), nil)

	t0 := obs.Now()
	if _, err := eng.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	cold := obs.Since(t0)

	dirty := req
	dirty.Overlays = []service.OverlaySpec{{Pos: "r1c1", XMM: 2, YMM: 2, RMM: 3, DeltaFrac: 0.03}}
	t1 := obs.Now()
	if _, err := eng.Run(ctx, dirty); err != nil {
		t.Fatal(err)
	}
	warm := obs.Since(t1)

	if cold < 5*warm {
		t.Fatalf("warm-dirty re-sweep %v not ≥5x faster than cold %v", warm, cold)
	}
}
