package vipipe

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"

	"vipipe/internal/drc"
	"vipipe/internal/mc"
	"vipipe/internal/netlist"
	"vipipe/internal/pipeline"
	"vipipe/internal/power"
	"vipipe/internal/stats"
	"vipipe/internal/tmodel"
	"vipipe/internal/variation"
	"vipipe/internal/yield"
)

// DiskCodecs maps the flow's artifact nodes to the serializers a
// pipeline.DiskStore needs. Only pure-data artifacts persist:
//
//	mc/<pos>          *mc.Result       (via a DTO: FitErr is an interface)
//	power/...         *power.Report
//	ladder            []variation.Pos
//	drc               *drc.Report
//	field/surface/... *yield.Surface
//	field/...         *yield.ShardStat (the warm re-sweep currency)
//	tmodel/...        *tmodel.Model    (compact what-if timing models)
//
// Engine-state artifacts — synth, place, analyze, workload, vi/* —
// return a nil codec and stay in the memory tier: they hold live
// netlists, analyzers and simulators whose identity matters (the
// partition keeps a pointer into its netlist; InsertShifters mutates
// it), and they rebuild deterministically from Config anyway. The
// expensive artifacts worth surviving a restart are exactly the Monte
// Carlo characterizations and power reports.
func DiskCodecs() pipeline.Codecs {
	return func(nodeID string) pipeline.Codec {
		switch {
		case nodeID == NodeLadder:
			return gobValue[[]variation.Pos]{}
		case nodeID == NodeDRC:
			return gobPointer[drc.Report]{}
		case strings.HasPrefix(nodeID, "mc/"):
			return mcCodec{}
		case strings.HasPrefix(nodeID, "power/"):
			return gobPointer[power.Report]{}
		// The surface prefix must match before the general field/
		// prefix: surface nodes are "field/surface/<planhash>".
		case strings.HasPrefix(nodeID, "field/surface/"):
			return gobPointer[yield.Surface]{}
		case strings.HasPrefix(nodeID, "field/"):
			return gobPointer[yield.ShardStat]{}
		case strings.HasPrefix(nodeID, "tmodel/"):
			return gobPointer[tmodel.Model]{}
		}
		return nil
	}
}

// gobValue serializes artifacts stored by value (slices, plain
// structs) through encoding/gob.
type gobValue[T any] struct{}

func (gobValue[T]) Encode(v any) ([]byte, error) {
	t, ok := v.(T)
	if !ok {
		return nil, fmt.Errorf("vipipe: artifact codec: got %T, want %T", v, t)
	}
	return gobBytes(t)
}

func (gobValue[T]) Decode(data []byte) (any, error) {
	var t T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&t); err != nil {
		return nil, fmt.Errorf("vipipe: artifact decode: %w", err)
	}
	return t, nil
}

// gobPointer serializes artifacts stored as *T, returning *T from
// Decode so graph consumers' type assertions keep working.
type gobPointer[T any] struct{}

func (gobPointer[T]) Encode(v any) ([]byte, error) {
	t, ok := v.(*T)
	if !ok || t == nil {
		return nil, fmt.Errorf("vipipe: artifact codec: got %T, want non-nil %T", v, t)
	}
	return gobBytes(t)
}

func (gobPointer[T]) Decode(data []byte) (any, error) {
	t := new(T)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(t); err != nil {
		return nil, fmt.Errorf("vipipe: artifact decode: %w", err)
	}
	return t, nil
}

func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("vipipe: artifact encode: %w", err)
	}
	return buf.Bytes(), nil
}

// mcCodec round-trips *mc.Result. A DTO stands in because
// mc.StageDist carries its fit failure as an error interface value,
// which gob cannot encode; the message string survives and is
// restored as an opaque error.
type mcCodec struct{}

type mcResultDTO struct {
	Pos                variation.Pos
	ClockPS            float64
	Samples            int
	Requested          int
	Skipped            []int
	PerStage           map[netlist.Stage]stageDistDTO
	CritPS             []float64
	EndpointViolations map[int]int
	StageCriticals     map[netlist.Stage]map[int]int
}

type stageDistDTO struct {
	Stage     netlist.Stage
	SlackPS   []float64
	Fit       stats.Normal
	GOF       stats.GOFResult
	KS        stats.GOFResult
	FitErr    string
	ViolFrac  float64
	ViolProb  float64
	Endpoints int
}

func (mcCodec) Encode(v any) ([]byte, error) {
	r, ok := v.(*mc.Result)
	if !ok || r == nil {
		return nil, fmt.Errorf("vipipe: artifact codec: got %T, want non-nil *mc.Result", v)
	}
	dto := mcResultDTO{
		Pos:                r.Pos,
		ClockPS:            r.ClockPS,
		Samples:            r.Samples,
		Requested:          r.Requested,
		Skipped:            r.Skipped,
		CritPS:             r.CritPS,
		EndpointViolations: r.EndpointViolations,
		StageCriticals:     r.StageCriticals,
	}
	if r.PerStage != nil {
		dto.PerStage = make(map[netlist.Stage]stageDistDTO, len(r.PerStage))
		for st, d := range r.PerStage {
			sd := stageDistDTO{
				Stage:     d.Stage,
				SlackPS:   d.SlackPS,
				Fit:       d.Fit,
				GOF:       d.GOF,
				KS:        d.KS,
				ViolFrac:  d.ViolFrac,
				ViolProb:  d.ViolProb,
				Endpoints: d.Endpoints,
			}
			if d.FitErr != nil {
				sd.FitErr = d.FitErr.Error()
			}
			dto.PerStage[st] = sd
		}
	}
	return gobBytes(dto)
}

func (mcCodec) Decode(data []byte) (any, error) {
	var dto mcResultDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("vipipe: artifact decode: %w", err)
	}
	r := &mc.Result{
		Pos:                dto.Pos,
		ClockPS:            dto.ClockPS,
		Samples:            dto.Samples,
		Requested:          dto.Requested,
		Skipped:            dto.Skipped,
		CritPS:             dto.CritPS,
		EndpointViolations: dto.EndpointViolations,
		StageCriticals:     dto.StageCriticals,
	}
	if dto.PerStage != nil {
		r.PerStage = make(map[netlist.Stage]*mc.StageDist, len(dto.PerStage))
		for st, sd := range dto.PerStage {
			d := &mc.StageDist{
				Stage:     sd.Stage,
				SlackPS:   sd.SlackPS,
				Fit:       sd.Fit,
				GOF:       sd.GOF,
				KS:        sd.KS,
				ViolFrac:  sd.ViolFrac,
				ViolProb:  sd.ViolProb,
				Endpoints: sd.Endpoints,
			}
			if sd.FitErr != "" {
				d.FitErr = errors.New(sd.FitErr)
			}
			r.PerStage[st] = d
		}
	}
	return r, nil
}
